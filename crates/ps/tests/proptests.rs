//! Property-based tests for the parameter server: quantization soundness and
//! two-phase split exactness on arbitrary histograms.

use dimboost_ps::quantize::quantize;
use dimboost_ps::split::best_split_in_range;
use dimboost_ps::{HistogramLayout, NodeSplit, ParameterServer, PsConfig, SplitParams};
use dimboost_simnet::CostModel;
use proptest::collection::vec;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy for (layout, one valid histogram row): G entries arbitrary,
/// H entries nonnegative, with consistent per-feature totals so that the
/// "derive totals from the first feature" trick is exercised honestly.
fn arb_layout_row() -> impl Strategy<Value = (HistogramLayout, Vec<f32>)> {
    (1usize..6, 2u32..8).prop_flat_map(|(nf, nb)| {
        // Per-feature bucket counts in 2..=nb+1.
        vec(2u32..=nb + 1, nf..=nf).prop_flat_map(move |buckets| {
            // Gradient pairs per instance-bucket; we synthesize per-feature
            // distributions over shared instance mass.
            let layout = HistogramLayout::new(buckets.clone());
            let total_pairs = 12usize;
            vec((-5.0f32..5.0, 0.01f32..2.0), total_pairs).prop_flat_map(move |pairs| {
                let buckets = buckets.clone();
                let layout = layout.clone();
                // For each feature, a bucket assignment for every pair.
                vec(
                    vec(
                        0usize..buckets.iter().copied().max().unwrap() as usize,
                        total_pairs,
                    ),
                    buckets.len(),
                )
                .prop_map(move |assignments| {
                    let mut row = vec![0.0f32; layout.row_len()];
                    for (f, assign) in assignments.iter().enumerate() {
                        let nb = layout.num_buckets(f);
                        for (i, &(g, h)) in pairs.iter().enumerate() {
                            let b = assign[i] % nb;
                            row[layout.g_index(f, b)] += g;
                            row[layout.h_index(f, b)] += h;
                        }
                    }
                    (layout.clone(), row)
                })
            })
        })
    })
}

proptest! {
    /// Two-phase exactness: for any shard partitioning, max over shard
    /// winners equals the full-scan winner.
    #[test]
    fn sharded_split_equals_full((layout, row) in arb_layout_row(), cut in 0usize..6) {
        let params = SplitParams { lambda: 1.0, gamma: 0.0, min_child_weight: 0.0, ..SplitParams::default() };
        let nf = layout.num_features();
        let cut = cut.min(nf);
        let full = best_split_in_range(&row, &layout, 0..nf, None, &params);
        let totals = Some((full.total_g, full.total_h));
        let left = best_split_in_range(&row[layout.elem_range(0..cut)], &layout, 0..cut, totals, &params);
        let right = best_split_in_range(&row[layout.elem_range(cut..nf)], &layout, cut..nf, totals, &params);
        prop_assert_eq!(NodeSplit::better(left.best, right.best), full.best);
    }

    /// Every reported split is internally consistent: positive gain matches
    /// recomputation from its own child sums, and children obey
    /// min_child_weight.
    #[test]
    fn reported_split_is_consistent((layout, row) in arb_layout_row()) {
        let params = SplitParams { lambda: 1.0, gamma: 0.1, min_child_weight: 0.05, ..SplitParams::default() };
        let nf = layout.num_features();
        let res = best_split_in_range(&row, &layout, 0..nf, None, &params);
        if let Some(s) = res.best {
            let gr = res.total_g - s.left_g;
            let hr = res.total_h - s.left_h;
            prop_assert!(s.left_h >= params.min_child_weight);
            prop_assert!(hr >= params.min_child_weight);
            let gain = params.gain(s.left_g, s.left_h, gr, hr);
            prop_assert!((gain - s.gain).abs() < 1e-6);
            prop_assert!(s.gain > 0.0);
        }
    }

    /// Server push/pull through any partitioning reproduces the sum of rows.
    #[test]
    fn server_accumulates_any_partitioning(
        (layout, row) in arb_layout_row(),
        servers in 1usize..5,
        pushes in 1usize..4,
    ) {
        let ps = ParameterServer::new(
            layout.num_features(),
            PsConfig { num_servers: servers, num_partitions: 0, cost_model: CostModel::FREE },
        );
        ps.init_tree(layout.clone());
        for _ in 0..pushes {
            ps.push_histogram(0, &row);
        }
        let got = ps.pull_histogram(0);
        for (g, r) in got.iter().zip(&row) {
            prop_assert!((g - r * pushes as f32).abs() < 1e-3);
        }
    }

    /// Quantization error is bounded by one quantization step per element.
    #[test]
    fn quantize_error_bound(values in vec(-100.0f32..100.0, 1..200), bits in 2u8..12, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let q = quantize(&values, bits, &mut rng);
        let back = q.dequantize();
        let step = q.scale() / ((1u32 << (bits - 1)) - 1) as f32;
        for (v, b) in values.iter().zip(&back) {
            prop_assert!((v - b).abs() <= step + 1e-4, "v={} b={} step={}", v, b, step);
        }
    }

    /// Quantized codes always fit the declared bit width.
    #[test]
    fn quantize_codes_in_range(values in vec(-10.0f32..10.0, 1..100), bits in 2u8..16, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let q = quantize(&values, bits, &mut rng);
        let max_code = 2 * ((1u32 << (bits - 1)) - 1);
        for &c in q.codes() {
            prop_assert!((c as u32) <= max_code);
        }
    }
}
