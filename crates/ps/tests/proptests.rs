//! Property-based tests for the parameter server: quantization soundness and
//! two-phase split exactness on arbitrary histograms.

use dimboost_ps::quantize::quantize;
use dimboost_ps::split::best_split_in_range;
use dimboost_ps::{HistogramLayout, NodeSplit, ParameterServer, PsConfig, SplitParams};
use dimboost_simnet::CostModel;
use proptest::collection::vec;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy for (layout, one valid histogram row): G entries arbitrary,
/// H entries nonnegative, with consistent per-feature totals so that the
/// "derive totals from the first feature" trick is exercised honestly.
fn arb_layout_row() -> impl Strategy<Value = (HistogramLayout, Vec<f32>)> {
    (1usize..6, 2u32..8).prop_flat_map(|(nf, nb)| {
        // Per-feature bucket counts in 2..=nb+1.
        vec(2u32..=nb + 1, nf..=nf).prop_flat_map(move |buckets| {
            // Gradient pairs per instance-bucket; we synthesize per-feature
            // distributions over shared instance mass.
            let layout = HistogramLayout::new(buckets.clone());
            let total_pairs = 12usize;
            vec((-5.0f32..5.0, 0.01f32..2.0), total_pairs).prop_flat_map(move |pairs| {
                let buckets = buckets.clone();
                let layout = layout.clone();
                // For each feature, a bucket assignment for every pair.
                vec(
                    vec(
                        0usize..buckets.iter().copied().max().unwrap() as usize,
                        total_pairs,
                    ),
                    buckets.len(),
                )
                .prop_map(move |assignments| {
                    let mut row = vec![0.0f32; layout.row_len()];
                    for (f, assign) in assignments.iter().enumerate() {
                        let nb = layout.num_buckets(f);
                        for (i, &(g, h)) in pairs.iter().enumerate() {
                            let b = assign[i] % nb;
                            row[layout.g_index(f, b)] += g;
                            row[layout.h_index(f, b)] += h;
                        }
                    }
                    (layout.clone(), row)
                })
            })
        })
    })
}

proptest! {
    /// Two-phase exactness: for any shard partitioning, max over shard
    /// winners equals the full-scan winner.
    #[test]
    fn sharded_split_equals_full((layout, row) in arb_layout_row(), cut in 0usize..6) {
        let params = SplitParams { lambda: 1.0, gamma: 0.0, min_child_weight: 0.0, ..SplitParams::default() };
        let nf = layout.num_features();
        let cut = cut.min(nf);
        let full = best_split_in_range(&row, &layout, 0..nf, None, &params);
        let totals = Some((full.total_g, full.total_h));
        let left = best_split_in_range(&row[layout.elem_range(0..cut)], &layout, 0..cut, totals, &params);
        let right = best_split_in_range(&row[layout.elem_range(cut..nf)], &layout, cut..nf, totals, &params);
        prop_assert_eq!(NodeSplit::better(left.best, right.best), full.best);
    }

    /// Every reported split is internally consistent: positive gain matches
    /// recomputation from its own child sums, and children obey
    /// min_child_weight.
    #[test]
    fn reported_split_is_consistent((layout, row) in arb_layout_row()) {
        let params = SplitParams { lambda: 1.0, gamma: 0.1, min_child_weight: 0.05, ..SplitParams::default() };
        let nf = layout.num_features();
        let res = best_split_in_range(&row, &layout, 0..nf, None, &params);
        if let Some(s) = res.best {
            let gr = res.total_g - s.left_g;
            let hr = res.total_h - s.left_h;
            prop_assert!(s.left_h >= params.min_child_weight);
            prop_assert!(hr >= params.min_child_weight);
            let gain = params.gain(s.left_g, s.left_h, gr, hr);
            prop_assert!((gain - s.gain).abs() < 1e-6);
            prop_assert!(s.gain > 0.0);
        }
    }

    /// Server push/pull through any partitioning reproduces the sum of rows.
    #[test]
    fn server_accumulates_any_partitioning(
        (layout, row) in arb_layout_row(),
        servers in 1usize..5,
        pushes in 1usize..4,
    ) {
        let ps = ParameterServer::new(
            layout.num_features(),
            PsConfig { num_servers: servers, num_partitions: 0, cost_model: CostModel::FREE },
        );
        ps.init_tree(layout.clone());
        for _ in 0..pushes {
            ps.push_histogram(0, &row);
        }
        let got = ps.pull_histogram(0);
        for (g, r) in got.iter().zip(&row) {
            prop_assert!((g - r * pushes as f32).abs() < 1e-3);
        }
    }

    /// Quantization error is bounded by one quantization step per element.
    #[test]
    fn quantize_error_bound(values in vec(-100.0f32..100.0, 1..200), bits in 2u8..12, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let q = quantize(&values, bits, &mut rng);
        let back = q.dequantize();
        let step = q.scale() / ((1u32 << (bits - 1)) - 1) as f32;
        for (v, b) in values.iter().zip(&back) {
            prop_assert!((v - b).abs() <= step + 1e-4, "v={} b={} step={}", v, b, step);
        }
    }

    /// Quantized codes always fit the declared bit width.
    #[test]
    fn quantize_codes_in_range(values in vec(-10.0f32..10.0, 1..100), bits in 2u8..16, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let q = quantize(&values, bits, &mut rng);
        let max_code = 2 * ((1u32 << (bits - 1)) - 1);
        for &c in q.codes() {
            prop_assert!((c as u32) <= max_code);
        }
    }
}

use dimboost_simnet::fault::OutageSpec;
use dimboost_simnet::{FaultPlan, FaultSession, Phase};
use rand::seq::SliceRandom;
use rand::Rng as _;

fn free_ps(features: usize, servers: usize) -> ParameterServer {
    let ps = ParameterServer::new(
        features,
        PsConfig {
            num_servers: servers,
            num_partitions: 0,
            cost_model: CostModel::FREE,
        },
    );
    ps.init_tree(HistogramLayout::new(vec![2; features]));
    ps
}

proptest! {
    /// Push idempotency: any delivery schedule in which each message's
    /// first copy arrives in issue order and retransmitted/duplicated
    /// copies arrive at arbitrary later points merges to a histogram
    /// bit-identical to the clean exactly-once schedule, and the comm
    /// ledger records each logical push exactly once.
    #[test]
    fn retried_push_schedules_merge_exactly_once(
        n_msgs in 1usize..12,
        servers in 1usize..4,
        rows in vec(vec(-8.0f32..8.0, 8..=8), 12..=12),
        extra_copies in vec(0usize..3, 12..=12),
        shuffle_seed in any::<u64>(),
    ) {
        let features = 2usize;
        let msgs: Vec<(u32, u64, u32, &Vec<f32>)> = (0..n_msgs)
            .map(|i| ((i % 3) as u32, (i / 3) as u64, (i % 2) as u32, &rows[i]))
            .collect();

        let clean = free_ps(features, servers);
        for &(w, s, node, row) in &msgs {
            prop_assert!(clean.push_histogram_from(w, s, node, row));
        }

        // Build the chaotic schedule: first copies stay in issue order (the
        // retry loop is synchronous per logical op, so a later op never
        // overtakes an earlier one's first delivery), while retransmitted
        // copies of message i land anywhere after its first copy.
        let mut schedule: Vec<usize> = (0..n_msgs).collect();
        let mut rng = StdRng::seed_from_u64(shuffle_seed);
        for (i, &copies) in extra_copies.iter().take(n_msgs).enumerate() {
            for _ in 0..copies {
                let first = schedule
                    .iter()
                    .position(|&m| m == i)
                    .expect("first copy present");
                let at = rng.random_range(first + 1..=schedule.len());
                schedule.insert(at, i);
            }
        }
        let chaotic = free_ps(features, servers);
        let mut applied = 0usize;
        for &i in &schedule {
            let (w, s, node, row) = msgs[i];
            if chaotic.push_histogram_from(w, s, node, row) {
                applied += 1;
            }
        }
        prop_assert_eq!(applied, n_msgs, "each message applies exactly once");
        for node in 0..2u32 {
            prop_assert_eq!(chaotic.pull_histogram(node), clean.pull_histogram(node));
        }
        let (cl, fl) = (clean.comm_ledger(), chaotic.comm_ledger());
        let p = Phase::BuildHistogram;
        prop_assert_eq!(cl.phase(p).bytes, fl.phase(p).bytes);
        prop_assert_eq!(cl.phase(p).packages, fl.phase(p).packages);
    }

    /// End-to-end exactness through the retry loop itself: the same pushes
    /// issued under an arbitrary fault plan (drops, lost acks, duplicates,
    /// an outage window) produce a bit-identical histogram and logical
    /// ledger to the clean run — only simulated time may differ.
    #[test]
    fn fault_plan_preserves_merged_state(
        plan_seed in any::<u64>(),
        drop_p in 0.0f64..0.35,
        ack_drop_p in 0.0f64..0.25,
        dup_p in 0.0f64..0.2,
        rows in vec(vec(-4.0f32..4.0, 12..=12), 5..=5),
        order_seed in any::<u64>(),
    ) {
        let features = 3usize;
        let mut order: Vec<usize> = (0..rows.len()).collect();
        let mut rng = StdRng::seed_from_u64(order_seed);
        order.shuffle(&mut rng);

        let clean = free_ps(features, 2);
        for &i in &order {
            clean.push_histogram(0, &rows[i]);
        }

        let faulted = free_ps(features, 2);
        let session = FaultSession::new(FaultPlan {
            seed: plan_seed,
            drop_p,
            ack_drop_p,
            dup_p,
            outages: vec![OutageSpec { server: 0, start: 0.0, duration: 0.01 }],
            ..FaultPlan::default()
        });
        faulted.attach_faults(session.clone());
        for &i in &order {
            session.set_worker(Some((i % 3) as u32));
            faulted.push_histogram(0, &rows[i]);
        }
        session.set_worker(None);

        prop_assert_eq!(faulted.pull_histogram(0), clean.pull_histogram(0));
        let (cl, fl) = (clean.comm_ledger(), faulted.comm_ledger());
        let p = Phase::BuildHistogram;
        prop_assert_eq!(cl.phase(p).bytes, fl.phase(p).bytes);
        prop_assert_eq!(cl.phase(p).packages, fl.phase(p).packages);
        let sum = session.summary();
        prop_assert_eq!(sum.dedup_hits, sum.ack_drops + sum.duplicates);
    }
}
