//! Sparse principal component analysis by power iteration.
//!
//! The paper's Table 6 asks what happens if the high-dimensional dataset is
//! first reduced with PCA (their experiment uses Spark MLlib's PCA) and then
//! trained in the lower dimension. This crate provides the substitute: a
//! from-scratch PCA that works directly on the CSR dataset without ever
//! densifying it. Covariance–vector products are computed as
//! `C·v = Xᵀ(X·v)/n − μ·(μᵀ·v)`, so each power-iteration step costs
//! `O(nnz + M)`; components are extracted one at a time with Gram–Schmidt
//! re-orthogonalization.

use dimboost_data::{Dataset, DatasetBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A fitted PCA transform: `k` orthonormal components over `M` features plus
/// the column means used for centering.
///
/// ```
/// use dimboost_linalg::{Pca, PcaConfig};
/// use dimboost_data::synthetic::{generate, SparseGenConfig};
///
/// let ds = generate(&SparseGenConfig::new(200, 30, 8, 1));
/// let pca = Pca::fit(&ds, &PcaConfig { components: 4, iterations: 20, seed: 1 }).unwrap();
/// let reduced = pca.transform(&ds);
/// assert_eq!(reduced.num_features(), 4);
/// assert_eq!(reduced.num_rows(), 200);
/// assert_eq!(reduced.labels(), ds.labels());
/// ```
#[derive(Debug, Clone)]
pub struct Pca {
    components: Vec<Vec<f32>>,
    /// Variance captured by each component (eigenvalues of the covariance).
    eigenvalues: Vec<f64>,
    means: Vec<f32>,
}

/// Configuration for [`Pca::fit`].
#[derive(Debug, Clone, Copy)]
pub struct PcaConfig {
    /// Number of components to extract.
    pub components: usize,
    /// Power-iteration steps per component.
    pub iterations: usize,
    /// Seed for the random starting vectors.
    pub seed: u64,
}

impl Default for PcaConfig {
    fn default() -> Self {
        Self {
            components: 2,
            iterations: 30,
            seed: 7,
        }
    }
}

fn dot(a: &[f32], b: &[f32]) -> f64 {
    a.iter().zip(b).map(|(&x, &y)| x as f64 * y as f64).sum()
}

fn norm(v: &[f32]) -> f64 {
    dot(v, v).sqrt()
}

impl Pca {
    /// Fits `config.components` principal components to the dataset.
    ///
    /// # Errors
    /// Fails on an empty dataset or when more components than features are
    /// requested.
    pub fn fit(dataset: &Dataset, config: &PcaConfig) -> Result<Self, String> {
        let n = dataset.num_rows();
        let m = dataset.num_features();
        if n == 0 {
            return Err("cannot fit PCA on an empty dataset".into());
        }
        if config.components == 0 || config.components > m {
            return Err(format!(
                "components must be in 1..={m}, got {}",
                config.components
            ));
        }

        // Column means.
        let mut means = vec![0.0f32; m];
        for (row, _) in dataset.iter_rows() {
            for (f, v) in row.iter() {
                means[f as usize] += v;
            }
        }
        for mu in &mut means {
            *mu /= n as f32;
        }

        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut components: Vec<Vec<f32>> = Vec::with_capacity(config.components);
        let mut eigenvalues = Vec::with_capacity(config.components);

        for _ in 0..config.components {
            // Random start, orthogonal to previous components.
            let mut v: Vec<f32> = (0..m).map(|_| rng.random::<f32>() - 0.5).collect();
            let mut eigenvalue = 0.0f64;
            for _ in 0..config.iterations.max(1) {
                let w = cov_mul(dataset, &means, &v);
                let mut w: Vec<f32> = w;
                // Re-orthogonalize against already-extracted components.
                for c in &components {
                    let proj = dot(&w, c);
                    for (wi, &ci) in w.iter_mut().zip(c) {
                        *wi -= (proj * ci as f64) as f32;
                    }
                }
                let len = norm(&w);
                if len < 1e-12 {
                    // Degenerate direction (zero variance left): stop here.
                    break;
                }
                eigenvalue = len; // ||C v|| -> eigenvalue for a unit v.
                for wi in &mut w {
                    *wi = (*wi as f64 / len) as f32;
                }
                v = w;
            }
            eigenvalues.push(eigenvalue);
            components.push(v);
        }

        Ok(Self {
            components,
            eigenvalues,
            means,
        })
    }

    /// The orthonormal components (k × M).
    pub fn components(&self) -> &[Vec<f32>] {
        &self.components
    }

    /// Variance captured by each component.
    pub fn eigenvalues(&self) -> &[f64] {
        &self.eigenvalues
    }

    /// Number of components.
    pub fn k(&self) -> usize {
        self.components.len()
    }

    /// Projects one sparse row onto the components (centered).
    pub fn project_row(&self, row: dimboost_data::RowView<'_>) -> Vec<f32> {
        self.components
            .iter()
            .map(|c| {
                let mut acc = 0.0f64;
                for (f, v) in row.iter() {
                    acc += v as f64 * c[f as usize] as f64;
                }
                // Centering: subtract μᵀc once.
                let mu_c = dot(&self.means, c);
                (acc - mu_c) as f32
            })
            .collect()
    }

    /// Transforms a dataset into the `k`-dimensional component space,
    /// keeping labels.
    pub fn transform(&self, dataset: &Dataset) -> Dataset {
        let k = self.k();
        // Precompute μᵀc per component.
        let mu_c: Vec<f64> = self
            .components
            .iter()
            .map(|c| dot(&self.means, c))
            .collect();
        let mut builder =
            DatasetBuilder::with_capacity(k, dataset.num_rows(), dataset.num_rows() * k);
        let mut indices: Vec<u32> = (0..k as u32).collect();
        for (row, label) in dataset.iter_rows() {
            let values: Vec<f32> = self
                .components
                .iter()
                .zip(&mu_c)
                .map(|(c, &mc)| {
                    let mut acc = 0.0f64;
                    for (f, v) in row.iter() {
                        acc += v as f64 * c[f as usize] as f64;
                    }
                    (acc - mc) as f32
                })
                .collect();
            // Dense projection: keep all k values (zeros are meaningful but
            // rare; the builder drops exact zeros harmlessly).
            indices.truncate(k);
            builder
                .push_raw(&indices, &values, label)
                .expect("projection rows are sorted and in range");
        }
        builder
            .finish()
            .expect("projection produces consistent arrays")
    }
}

/// Covariance–vector product without densifying `X`:
/// `C·v = Xᵀ(X·v)/n − μ·(μᵀ·v)`.
fn cov_mul(dataset: &Dataset, means: &[f32], v: &[f32]) -> Vec<f32> {
    let n = dataset.num_rows() as f64;
    let m = dataset.num_features();
    let mut out = vec![0.0f32; m];
    // Xᵀ(X v)
    for (row, _) in dataset.iter_rows() {
        let mut y = 0.0f64;
        for (f, x) in row.iter() {
            y += x as f64 * v[f as usize] as f64;
        }
        let y = y / n;
        for (f, x) in row.iter() {
            out[f as usize] += (x as f64 * y) as f32;
        }
    }
    // − μ (μᵀ v)
    let mu_v = dot(means, v);
    for (o, &mu) in out.iter_mut().zip(means) {
        *o -= (mu as f64 * mu_v) as f32;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dimboost_data::synthetic::{generate, SparseGenConfig};
    use dimboost_data::SparseInstance;

    /// Dense 2-feature dataset stretched along the (1, 1) direction.
    fn correlated() -> Dataset {
        let mut instances = Vec::new();
        let mut labels = Vec::new();
        for i in 0..200 {
            let t = (i as f32 / 100.0) - 1.0; // [-1, 1)
            let jitter = ((i * 37 % 17) as f32 / 17.0 - 0.5) * 0.1;
            instances.push(
                SparseInstance::new(vec![0, 1], vec![3.0 * t + jitter, 3.0 * t - jitter]).unwrap(),
            );
            labels.push(0.0);
        }
        Dataset::from_instances(&instances, labels, 2).unwrap()
    }

    #[test]
    fn first_component_follows_correlation() {
        let pca = Pca::fit(
            &correlated(),
            &PcaConfig {
                components: 1,
                iterations: 50,
                seed: 1,
            },
        )
        .unwrap();
        let c = &pca.components()[0];
        // Should align with (1,1)/sqrt(2) up to sign.
        let target = 1.0 / 2.0f32.sqrt();
        assert!(
            (c[0].abs() - target).abs() < 0.05 && (c[1].abs() - target).abs() < 0.05,
            "component {c:?}"
        );
        assert_eq!(c[0].signum(), c[1].signum());
    }

    #[test]
    fn components_are_orthonormal() {
        let ds = generate(&SparseGenConfig::new(500, 30, 8, 5));
        let pca = Pca::fit(
            &ds,
            &PcaConfig {
                components: 4,
                iterations: 40,
                seed: 2,
            },
        )
        .unwrap();
        for i in 0..4 {
            let ni = norm(&pca.components()[i]);
            assert!((ni - 1.0).abs() < 1e-3, "component {i} norm {ni}");
            for j in 0..i {
                let d = dot(&pca.components()[i], &pca.components()[j]);
                assert!(d.abs() < 1e-2, "components {i},{j} not orthogonal: {d}");
            }
        }
        // Eigenvalues come out in non-increasing order (up to small noise).
        let ev = pca.eigenvalues();
        for w in ev.windows(2) {
            assert!(w[1] <= w[0] * 1.05 + 1e-9, "eigenvalues not sorted: {ev:?}");
        }
    }

    #[test]
    fn transform_shapes_and_labels() {
        let ds = generate(&SparseGenConfig::new(100, 20, 5, 9));
        let pca = Pca::fit(
            &ds,
            &PcaConfig {
                components: 3,
                iterations: 20,
                seed: 3,
            },
        )
        .unwrap();
        let proj = pca.transform(&ds);
        assert_eq!(proj.num_rows(), 100);
        assert_eq!(proj.num_features(), 3);
        assert_eq!(proj.labels(), ds.labels());
    }

    #[test]
    fn projection_captures_variance() {
        // Projected variance along PC1 of the correlated set ≈ its
        // eigenvalue, and is most of the total variance.
        let ds = correlated();
        let pca = Pca::fit(
            &ds,
            &PcaConfig {
                components: 2,
                iterations: 60,
                seed: 4,
            },
        )
        .unwrap();
        let proj = pca.transform(&ds);
        let var = |vals: Vec<f32>| {
            let n = vals.len() as f64;
            let mean = vals.iter().map(|&v| v as f64).sum::<f64>() / n;
            vals.iter().map(|&v| (v as f64 - mean).powi(2)).sum::<f64>() / n
        };
        let v1 = var((0..proj.num_rows()).map(|i| proj.row(i).get(0)).collect());
        let v2 = var((0..proj.num_rows()).map(|i| proj.row(i).get(1)).collect());
        assert!(v1 > 50.0 * v2, "PC1 var {v1} should dominate PC2 var {v2}");
        assert!((v1 - pca.eigenvalues()[0]).abs() / v1 < 0.05);
    }

    #[test]
    fn project_row_matches_transform() {
        let ds = generate(&SparseGenConfig::new(50, 15, 4, 11));
        let pca = Pca::fit(
            &ds,
            &PcaConfig {
                components: 2,
                iterations: 20,
                seed: 5,
            },
        )
        .unwrap();
        let proj = pca.transform(&ds);
        for i in 0..5 {
            let direct = pca.project_row(ds.row(i));
            for (j, &d) in direct.iter().enumerate() {
                assert!((proj.row(i).get(j as u32) - d).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn deterministic() {
        let ds = generate(&SparseGenConfig::new(100, 10, 3, 2));
        let cfg = PcaConfig {
            components: 2,
            iterations: 15,
            seed: 6,
        };
        let a = Pca::fit(&ds, &cfg).unwrap();
        let b = Pca::fit(&ds, &cfg).unwrap();
        assert_eq!(a.components(), b.components());
    }

    #[test]
    fn rejects_bad_inputs() {
        let ds = generate(&SparseGenConfig::new(10, 5, 2, 1));
        assert!(Pca::fit(
            &ds,
            &PcaConfig {
                components: 0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(Pca::fit(
            &ds,
            &PcaConfig {
                components: 6,
                ..Default::default()
            }
        )
        .is_err());
        let empty = Dataset::empty(5);
        assert!(Pca::fit(&empty, &PcaConfig::default()).is_err());
    }
}
