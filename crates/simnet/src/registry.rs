//! A small metrics registry: counters, gauges, and fixed-bucket histograms
//! with interpolated percentiles.
//!
//! The registry exists to answer tail questions the per-phase aggregates
//! cannot — p50/p95/p99 of PS request service time, queue depth, message
//! size, per-worker phase duration. Two design rules keep it compatible with
//! the repo-wide determinism contract:
//!
//! 1. **Fixed buckets.** Histogram bucket boundaries are declared up front
//!    (log-spaced by default), never adapted to the data, so the exported
//!    quantiles are a pure function of the observed multiset of values.
//! 2. **Name prefixes declare determinism.** Metrics fed from the simulated
//!    clock live under `sim/` and must be bit-identical across reruns;
//!    metrics fed from wall-clock measurements live under `wall/` and are
//!    excluded from canonical documents and from `report-diff` comparisons.
//!
//! Export order is the `BTreeMap` name order — stable by construction.

use std::collections::BTreeMap;

/// A histogram over fixed, pre-declared bucket boundaries.
///
/// `bounds` holds ascending upper bounds; values above the last bound land
/// in an implicit overflow bucket. Alongside the buckets the histogram keeps
/// exact `count`, `sum`, `min`, and `max`, so quantile estimates can be
/// clamped to the observed range (a histogram of one value reports that
/// value for every percentile).
#[derive(Debug, Clone, PartialEq)]
pub struct FixedHistogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl FixedHistogram {
    /// A histogram with explicit ascending bucket upper bounds.
    pub fn with_bounds(bounds: Vec<f64>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bounds must be strictly ascending"
        );
        let counts = vec![0; bounds.len() + 1];
        FixedHistogram {
            bounds,
            counts,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Log-spaced bounds from `lo` to `hi` with `per_decade` buckets per
    /// factor of ten. The default resolution for registry metrics.
    pub fn log_spaced(lo: f64, hi: f64, per_decade: usize) -> Self {
        assert!(lo > 0.0 && hi > lo && per_decade > 0);
        let decades = (hi / lo).log10();
        let steps = (decades * per_decade as f64).ceil() as usize;
        let ratio = 10f64.powf(1.0 / per_decade as f64);
        let mut bounds = Vec::with_capacity(steps + 1);
        let mut b = lo;
        for _ in 0..=steps {
            bounds.push(b);
            b *= ratio;
        }
        FixedHistogram::with_bounds(bounds)
    }

    /// The registry-wide default: 1 ns .. 1e9 (seconds, bytes, or counts all
    /// fit), three buckets per decade.
    pub fn default_buckets() -> Self {
        FixedHistogram::log_spaced(1e-9, 1e9, 3)
    }

    /// Records one observation.
    pub fn observe(&mut self, v: f64) {
        let idx = match self.bounds.iter().position(|&b| v <= b) {
            Some(i) => i,
            None => self.bounds.len(),
        };
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest observation (0.0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (0.0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Interpolated quantile estimate, clamped to the observed `[min, max]`.
    ///
    /// Within the bucket containing the target rank the estimate is linear
    /// between the bucket's *effective* edges: the declared bounds tightened
    /// to the observed range. The implicit overflow bucket has no declared
    /// upper bound, so its right edge is the tracked `max` — the estimate
    /// clamps to the recorded maximum rather than extrapolating past the
    /// last bound or silently returning it. Exact for the extremes (q=0 →
    /// min, q=1 → max) and for single-value histograms.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = q * self.count as f64;
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let next = cum + c;
            if (next as f64) >= target {
                // Tighten the declared edges to the observed range: every
                // value in this bucket is >= min, and the overflow bucket's
                // only honest right edge is the recorded max.
                let lo = if i == 0 {
                    self.min
                } else {
                    self.bounds[i - 1].max(self.min)
                };
                let hi = if i < self.bounds.len() {
                    self.bounds[i].min(self.max)
                } else {
                    self.max
                };
                let frac = (target - cum as f64) / c as f64;
                let est = lo + (hi - lo) * frac.clamp(0.0, 1.0);
                return est.clamp(self.min, self.max);
            }
            cum = next;
        }
        self.max
    }
}

/// One registered metric.
#[derive(Debug, Clone, PartialEq)]
pub enum Metric {
    /// A monotone event count.
    Counter(u64),
    /// A last-value gauge that also tracks its observed range.
    Gauge { last: f64, min: f64, max: f64 },
    /// A fixed-bucket histogram.
    Histogram(FixedHistogram),
}

/// Flat, export-friendly view of one metric, used by `RunReport`'s
/// `percentiles` section and by the trace tooling.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricExport {
    /// Registry name, e.g. `sim/ps_service_secs`.
    pub name: String,
    /// `"counter"`, `"gauge"`, or `"histogram"`.
    pub kind: &'static str,
    /// False for `wall/`-prefixed metrics, which may differ across reruns.
    pub deterministic: bool,
    /// Observation count (1 for counters and gauges).
    pub count: u64,
    /// Counter value, gauge last value, or histogram sum.
    pub value: f64,
    /// Observed minimum.
    pub min: f64,
    /// Observed maximum.
    pub max: f64,
    /// 50th percentile (histograms only; 0 otherwise).
    pub p50: f64,
    /// 95th percentile (histograms only; 0 otherwise).
    pub p95: f64,
    /// 99th percentile (histograms only; 0 otherwise).
    pub p99: f64,
}

/// Prefix that marks a metric as wall-clock (nondeterministic).
pub const WALL_PREFIX: &str = "wall/";

/// A named collection of metrics with deterministic iteration order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    metrics: BTreeMap<String, Metric>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the named counter, creating it at zero.
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        match self
            .metrics
            .entry(name.to_string())
            .or_insert(Metric::Counter(0))
        {
            Metric::Counter(v) => *v += delta,
            other => panic!("metric {name} is not a counter: {other:?}"),
        }
    }

    /// Sets the named gauge.
    pub fn gauge_set(&mut self, name: &str, v: f64) {
        match self
            .metrics
            .entry(name.to_string())
            .or_insert(Metric::Gauge {
                last: v,
                min: v,
                max: v,
            }) {
            Metric::Gauge { last, min, max } => {
                *last = v;
                *min = min.min(v);
                *max = max.max(v);
            }
            other => panic!("metric {name} is not a gauge: {other:?}"),
        }
    }

    /// Records one observation into the named histogram with the registry's
    /// default log-spaced buckets.
    pub fn observe(&mut self, name: &str, v: f64) {
        self.observe_with(name, v, FixedHistogram::default_buckets);
    }

    /// Records one observation, creating the histogram with `make` if absent.
    pub fn observe_with(&mut self, name: &str, v: f64, make: impl FnOnce() -> FixedHistogram) {
        match self
            .metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(make()))
        {
            Metric::Histogram(h) => h.observe(v),
            other => panic!("metric {name} is not a histogram: {other:?}"),
        }
    }

    /// Looks up one metric.
    pub fn get(&self, name: &str) -> Option<&Metric> {
        self.metrics.get(name)
    }

    /// Flat export of every metric, sorted by name.
    pub fn export(&self) -> Vec<MetricExport> {
        self.metrics
            .iter()
            .map(|(name, metric)| {
                let deterministic = !name.starts_with(WALL_PREFIX);
                match metric {
                    Metric::Counter(v) => MetricExport {
                        name: name.clone(),
                        kind: "counter",
                        deterministic,
                        count: 1,
                        value: *v as f64,
                        min: *v as f64,
                        max: *v as f64,
                        p50: 0.0,
                        p95: 0.0,
                        p99: 0.0,
                    },
                    Metric::Gauge { last, min, max } => MetricExport {
                        name: name.clone(),
                        kind: "gauge",
                        deterministic,
                        count: 1,
                        value: *last,
                        min: *min,
                        max: *max,
                        p50: 0.0,
                        p95: 0.0,
                        p99: 0.0,
                    },
                    Metric::Histogram(h) => MetricExport {
                        name: name.clone(),
                        kind: "histogram",
                        deterministic,
                        count: h.count(),
                        value: h.sum(),
                        min: h.min(),
                        max: h.max(),
                        p50: h.quantile(0.50),
                        p95: h.quantile(0.95),
                        p99: h.quantile(0.99),
                    },
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let mut r = MetricsRegistry::new();
        r.counter_add("sim/requests", 3);
        r.counter_add("sim/requests", 2);
        r.gauge_set("sim/clock", 1.5);
        r.gauge_set("sim/clock", 0.5);
        assert_eq!(r.get("sim/requests"), Some(&Metric::Counter(5)));
        match r.get("sim/clock") {
            Some(Metric::Gauge { last, min, max }) => {
                assert_eq!(*last, 0.5);
                assert_eq!(*min, 0.5);
                assert_eq!(*max, 1.5);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn histogram_quantiles_bracket_observations() {
        let mut h = FixedHistogram::log_spaced(1e-6, 1e3, 4);
        for i in 1..=100 {
            h.observe(i as f64 * 0.01); // 0.01 .. 1.00
        }
        assert_eq!(h.count(), 100);
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        assert!((0.2..=0.8).contains(&p50), "p50={p50}");
        assert!(p99 > p50 && p99 <= 1.0, "p99={p99}");
        assert_eq!(h.quantile(0.0), h.min());
        assert_eq!(h.quantile(1.0), h.max());
    }

    #[test]
    fn single_value_histogram_is_exact() {
        let mut h = FixedHistogram::default_buckets();
        h.observe(0.125);
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 0.125, "q={q}");
        }
        assert_eq!(h.sum(), 0.125);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = FixedHistogram::default_buckets();
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
    }

    #[test]
    fn overflow_rank_interpolates_within_observed_range() {
        // Every sample lands above the top declared bound, so every rank —
        // not just q=1 — resolves in the implicit overflow bucket. The
        // estimate must interpolate between the observed min and max, never
        // from the stale last bound (which would report e.g. p50 = 155 for
        // bounds [1, 10] and samples {100, 200, 300}).
        let mut h = FixedHistogram::with_bounds(vec![1.0, 10.0]);
        for v in [100.0, 200.0, 300.0] {
            h.observe(v);
        }
        assert_eq!(h.quantile(0.0), 100.0);
        assert_eq!(h.quantile(0.5), 200.0); // 100 + (300-100) * (1.5/3)
        assert_eq!(h.quantile(1.0), 300.0);
        for q in [0.25, 0.9, 0.99, 0.999] {
            let est = h.quantile(q);
            assert!(
                (100.0..=300.0).contains(&est),
                "q={q} escaped the observed range: {est}"
            );
        }
        // A single overflow sample is exact at every percentile.
        let mut one = FixedHistogram::with_bounds(vec![1.0]);
        one.observe(5e7);
        for q in [0.0, 0.5, 0.99, 0.999, 1.0] {
            assert_eq!(one.quantile(q), 5e7, "q={q}");
        }
    }

    #[test]
    fn overflow_bucket_catches_large_values() {
        let mut h = FixedHistogram::with_bounds(vec![1.0, 10.0]);
        h.observe(1e6);
        h.observe(0.5);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), 1e6);
        assert_eq!(h.quantile(1.0), 1e6);
    }

    #[test]
    fn export_is_sorted_and_flags_wall_metrics() {
        let mut r = MetricsRegistry::new();
        r.observe("wall/phase_secs/build_histogram", 0.2);
        r.counter_add("sim/requests", 1);
        r.observe("sim/ps_service_secs", 0.001);
        let exp = r.export();
        let names: Vec<&str> = exp.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "sim/ps_service_secs",
                "sim/requests",
                "wall/phase_secs/build_histogram"
            ]
        );
        assert!(exp[0].deterministic);
        assert!(exp[1].deterministic);
        assert!(!exp[2].deterministic);
        assert_eq!(exp[1].kind, "counter");
        assert_eq!(exp[0].kind, "histogram");
        assert_eq!(exp[0].count, 1);
    }

    #[test]
    fn determinism_same_observations_same_export() {
        let feed = |r: &mut MetricsRegistry| {
            for i in 0..50 {
                r.observe("sim/x", (i as f64) * 1e-4 + 1e-6);
                r.counter_add("sim/n", 1);
            }
            r.gauge_set("sim/g", 0.25);
        };
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        feed(&mut a);
        feed(&mut b);
        assert_eq!(a.export(), b.export());
    }
}
