use std::iter::Sum;
use std::ops::{Add, AddAssign};

use serde::{Deserialize, Serialize};

/// Simulated time in seconds. A newtype so simulated durations cannot be
/// confused with wall-clock measurements in the benchmark harness.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct SimTime(pub f64);

impl SimTime {
    /// Zero duration.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Seconds as a plain `f64`.
    pub fn seconds(self) -> f64 {
        self.0
    }

    /// The larger of two durations (synchronization point of parallel work).
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, Add::add)
    }
}

/// The communication cost model of Section 3 (after Thakur et al.):
/// sending or receiving a package of `n` bytes costs `α + n·β`, and merging
/// `n` bytes of histogram costs `n·γ`.
///
/// ```
/// use dimboost_simnet::CostModel;
///
/// let m = CostModel::GIGABIT_LAN;
/// let h = 32 << 20; // a 32 MiB histogram
/// // Table 1's headline: for large messages the PS exchange beats the
/// // binomial-tree AllReduce and all-to-one reduce.
/// assert!(m.t_ps_exchange(h, 32) < m.t_allreduce_binomial(h, 32));
/// assert!(m.t_allreduce_binomial(h, 32) < m.t_reduce_to_one(h, 32));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Latency per package, in seconds.
    pub alpha: f64,
    /// Transfer time per byte, in seconds.
    pub beta: f64,
    /// Merge (computation) time per byte, in seconds.
    pub gamma: f64,
}

impl CostModel {
    /// A 1 Gb Ethernet profile matching the paper's clusters: 1 ms package
    /// latency, 8 ns/byte transfer (1 Gbit/s), 1 ns/byte merge.
    pub const GIGABIT_LAN: CostModel = CostModel {
        alpha: 1e-3,
        beta: 8e-9,
        gamma: 1e-9,
    };

    /// A 10 Gb datacenter profile (for sensitivity sweeps).
    pub const TEN_GIGABIT_LAN: CostModel = CostModel {
        alpha: 1e-4,
        beta: 8e-10,
        gamma: 1e-9,
    };

    /// A model that charges nothing — disables communication accounting.
    pub const FREE: CostModel = CostModel {
        alpha: 0.0,
        beta: 0.0,
        gamma: 0.0,
    };

    /// Time to move one package of `bytes` over a link.
    pub fn send(&self, bytes: usize) -> SimTime {
        SimTime(self.alpha + bytes as f64 * self.beta)
    }

    /// Time to merge `bytes` of received histogram into a local buffer.
    pub fn merge(&self, bytes: usize) -> SimTime {
        SimTime(bytes as f64 * self.gamma)
    }

    // ---- Table 1 closed forms -------------------------------------------
    //
    // `h` is the histogram size in bytes, `w` the number of workers. These
    // are the exact expressions of Table 1; the collective implementations
    // charge these times while executing the real data path.

    /// MLlib (MapReduce all-to-one): `h·β·w + α + h·γ`.
    pub fn t_reduce_to_one(&self, h: usize, w: usize) -> SimTime {
        SimTime(h as f64 * self.beta * w as f64 + self.alpha + h as f64 * self.gamma)
    }

    /// XGBoost (binomial-tree AllReduce): `(h·β + α + h·γ)·⌈log₂ w⌉`.
    pub fn t_allreduce_binomial(&self, h: usize, w: usize) -> SimTime {
        let steps = (w.max(1) as f64).log2().ceil();
        SimTime((h as f64 * self.beta + self.alpha + h as f64 * self.gamma) * steps)
    }

    /// LightGBM (recursive-halving ReduceScatter):
    /// `(w−1)/w·h·β + (α + h·γ)·⌈log₂ w⌉`, doubled when `w` is not a power
    /// of two (Section 3, "Remarks").
    pub fn t_reduce_scatter(&self, h: usize, w: usize) -> SimTime {
        let w_f = w.max(1) as f64;
        let steps = w_f.log2().ceil();
        let base =
            (w_f - 1.0) / w_f * h as f64 * self.beta + (self.alpha + h as f64 * self.gamma) * steps;
        if w.is_power_of_two() {
            SimTime(base)
        } else {
            SimTime(2.0 * base)
        }
    }

    /// DimBoost (parameter-server batch exchange):
    /// `(w−1)/w·h·β + (w−1)·α + h·γ`.
    pub fn t_ps_exchange(&self, h: usize, w: usize) -> SimTime {
        let w_f = w.max(1) as f64;
        SimTime(
            (w_f - 1.0) / w_f * h as f64 * self.beta
                + (w_f - 1.0) * self.alpha
                + h as f64 * self.gamma,
        )
    }

    /// Parameter-server batch exchange with `p` servers that may be fewer
    /// than the `w` workers (Table 4 sweeps `p`). Each server's inbound link
    /// serializes `w·h/p` bytes and merges them; servers work in parallel,
    /// so bandwidth and merge scale with `w/p`. With `p = w` this reduces to
    /// [`CostModel::t_ps_exchange`] (up to the co-location term `(w−1)/w`).
    pub fn t_ps_exchange_p(&self, h: usize, w: usize, p: usize) -> SimTime {
        let w_f = w.max(1) as f64;
        let p_f = p.max(1) as f64;
        if p >= w {
            return self.t_ps_exchange(h, w);
        }
        SimTime(
            w_f * h as f64 * self.beta / p_f
                + (w_f - 1.0) * self.alpha
                + w_f * h as f64 * self.gamma / p_f,
        )
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::GIGABIT_LAN
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const H: usize = 32 << 20; // 32 MiB histogram
    const M: CostModel = CostModel::GIGABIT_LAN;

    #[test]
    fn send_and_merge_match_model() {
        let t = M.send(1_000_000);
        assert!((t.seconds() - (1e-3 + 1_000_000.0 * 8e-9)).abs() < 1e-12);
        let m = M.merge(1_000_000);
        assert!((m.seconds() - 1e-3).abs() < 1e-12);
    }

    #[test]
    fn table1_large_message_ordering() {
        // With a large histogram and many workers, Table 1 predicts
        // DimBoost ≈ LightGBM (power of two) < XGBoost < MLlib.
        let w = 32;
        let mllib = M.t_reduce_to_one(H, w).seconds();
        let xgb = M.t_allreduce_binomial(H, w).seconds();
        let lgbm = M.t_reduce_scatter(H, w).seconds();
        let dim = M.t_ps_exchange(H, w).seconds();
        assert!(dim <= lgbm, "dim={dim} lgbm={lgbm}");
        assert!(lgbm < xgb, "lgbm={lgbm} xgb={xgb}");
        assert!(xgb < mllib, "xgb={xgb} mllib={mllib}");
        // "Comparable time" (Section 3 Remarks) holds in the
        // bandwidth-dominated regime: with merge cost out of the picture the
        // two differ only by latency terms.
        let nm = CostModel { gamma: 0.0, ..M };
        let big = 256 << 20;
        let lgbm_bw = nm.t_reduce_scatter(big, w).seconds();
        let dim_bw = nm.t_ps_exchange(big, w).seconds();
        assert!(
            (dim_bw - lgbm_bw).abs() / lgbm_bw < 0.05,
            "dim={dim_bw} lgbm={lgbm_bw}"
        );
    }

    #[test]
    fn reduce_scatter_doubles_off_power_of_two() {
        let t32 = M.t_reduce_scatter(H, 32).seconds();
        let t33 = M.t_reduce_scatter(H, 33).seconds();
        // w=33 pays the ~2x penalty (the formula also gains a step).
        assert!(t33 > 1.9 * t32, "t33={t33} t32={t32}");
        // DimBoost at w=33 stays close to w=32.
        let d32 = M.t_ps_exchange(H, 32).seconds();
        let d33 = M.t_ps_exchange(H, 33).seconds();
        assert!((d33 - d32) / d32 < 0.05);
    }

    #[test]
    fn small_message_latency_dominates_ps() {
        // For tiny messages the (w-1)·α term makes the PS exchange the
        // slowest — the regime where binomial AllReduce wins, matching the
        // paper's observation that existing implementations are fine for
        // small messages.
        let h = 256;
        let w = 50;
        assert!(M.t_ps_exchange(h, w).seconds() > M.t_allreduce_binomial(h, w).seconds());
    }

    #[test]
    fn more_servers_is_faster() {
        // Table 4's shape: the exchange speeds up as p grows toward w.
        let w = 50;
        let t5 = M.t_ps_exchange_p(H, w, 5).seconds();
        let t20 = M.t_ps_exchange_p(H, w, 20).seconds();
        let t50 = M.t_ps_exchange_p(H, w, 50).seconds();
        assert!(t5 > t20 && t20 > t50, "t5={t5} t20={t20} t50={t50}");
        // p >= w degenerates to the co-located formula.
        assert_eq!(M.t_ps_exchange_p(H, w, 50), M.t_ps_exchange(H, 50));
        assert_eq!(M.t_ps_exchange_p(H, w, 99), M.t_ps_exchange(H, 50));
    }

    #[test]
    fn sim_time_arithmetic() {
        let a = SimTime(1.0);
        let b = SimTime(2.5);
        assert_eq!((a + b).seconds(), 3.5);
        assert_eq!(a.max(b), b);
        let total: SimTime = [a, b, SimTime(0.5)].into_iter().sum();
        assert_eq!(total.seconds(), 4.0);
        let mut c = a;
        c += b;
        assert_eq!(c.seconds(), 3.5);
    }
}
