//! Deterministic fault injection for the simulated cluster.
//!
//! A [`FaultPlan`] is a *seeded, pure* description of everything that goes
//! wrong during a run: per-message drop/duplication probabilities, transient
//! server-partition outage windows, per-worker straggler slowdown factors,
//! a worker crash at round *k*, and permanently lost workers with a
//! degradation policy. Every stochastic decision is a hash of
//! `(plan seed, worker, message seq, attempt)` — not a stateful RNG — so the
//! fate of a message does not depend on the order in which other messages
//! were faulted, and the same plan replays the identical fault schedule on
//! every rerun.
//!
//! # The exactness invariant
//!
//! Faults may change *timing*, never the *learned model*. The retry loop in
//! `dimboost-ps` delivers every message exactly once to the server state
//! (per-worker sequence ids deduplicated server-side), records each logical
//! operation in the [`crate::CommLedger`] exactly once, and charges all
//! recovery overhead (timeouts, backoff, outage waits, straggler dilation)
//! as *pure simulated time* on the phase that suffered it. A faulted run
//! and a clean run with the same training seed therefore produce
//! bit-identical models and bit-identical per-phase byte/package counts;
//! only the `sim_time` columns and the `faults` report section differ.
//!
//! Because everything lands on the simulated clock, a faulted run is itself
//! deterministic: rerunning it reproduces the same canonical report and
//! trace byte-for-byte.

use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::Phase;

/// Retries are capped; after this many attempts the network "heals" and the
/// message is force-delivered so every run terminates.
pub const MAX_ATTEMPTS: u32 = 64;

/// What happens to one delivery attempt of one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fate {
    /// Delivered and acknowledged: the op applies and the client moves on.
    Deliver,
    /// Lost before reaching the server: nothing applies; the client times
    /// out, backs off, and retries.
    DropRequest,
    /// Applied server-side but the acknowledgement is lost: the client
    /// retries and the duplicate is absorbed by sequence-id deduplication.
    DropAck,
    /// Delivered twice (e.g. a retransmit raced the original): the second
    /// copy is absorbed by deduplication.
    Duplicate,
}

/// A per-worker slowdown: the worker's share of `phase` (all phases when
/// `None`) takes `factor`× as long on the simulated clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StragglerSpec {
    /// Worker the slowdown applies to.
    pub worker: u32,
    /// Multiplicative slowdown (≥ 1.0).
    pub factor: f64,
    /// Phase the slowdown applies to; `None` = every phase.
    pub phase: Option<Phase>,
}

/// A transient window during which a server partition is unreachable:
/// operations arriving inside `[start, start + duration)` (simulated
/// seconds) block until the window ends.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OutageSpec {
    /// Server the outage hits (informational: the batched PS ops touch
    /// every partition, so any dark server blocks the op).
    pub server: u32,
    /// Window start on the simulated clock, in seconds.
    pub start: f64,
    /// Window length in seconds.
    pub duration: f64,
}

/// What the trainer does about a permanently lost worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LossPolicy {
    /// Another machine adopts the lost worker's instance shard. The shard's
    /// computation (and its push/RNG streams) continue unchanged, so the
    /// model stays bit-identical; the adopter's doubled load dilates the
    /// simulated phase times instead.
    Redistribute,
    /// Abort the run with an error.
    Abort,
}

/// A worker that is permanently lost at the start of round `round`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LossSpec {
    /// Worker that disappears.
    pub worker: u32,
    /// Round (0-based) at whose start the loss is detected.
    pub round: usize,
    /// Degradation policy.
    pub policy: LossPolicy,
}

/// A machine that joins the cluster at the start of round `round` and
/// receives a deterministic re-shard of logical stripes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JoinSpec {
    /// Machine id of the joiner (must not already be live).
    pub worker: u32,
    /// Round (0-based) at whose start the join takes effect.
    pub round: usize,
}

/// How a gracefully departing machine's stripes reach their new owners.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeavePolicy {
    /// The leaver streams its stripe state to the adopters before going
    /// dark: cheap per-stripe transfer charged as `handoff_secs`.
    Handoff,
    /// The leaver vanishes and the adopters re-read the stripes cold from
    /// the deterministic partition: charged as `reshard_secs` (2× the
    /// handoff byte cost).
    Redistribute,
}

/// A machine that gracefully leaves the cluster at the start of round
/// `round`, handing its stripes to the remaining machines.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeaveSpec {
    /// Machine id of the leaver (must be live; never the last machine).
    pub worker: u32,
    /// Round (0-based) at whose start the leave takes effect.
    pub round: usize,
    /// How the stripe state moves.
    pub policy: LeavePolicy,
}

/// A heterogeneous-hardware multiplier: every phase charged to `worker`
/// takes `factor`× as long on the simulated clock (≥ 1, stretch-only).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeedSpec {
    /// Machine id the multiplier applies to.
    pub worker: u32,
    /// Service-time multiplier (≥ 1.0).
    pub factor: f64,
}

/// A seeded, deterministic fault schedule. See the module docs for the
/// exactness invariant and [`FaultPlan::parse`] for the text format.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for all per-message fate and jitter hashes.
    pub seed: u64,
    /// Probability a delivery attempt is lost before reaching the server.
    pub drop_p: f64,
    /// Probability an attempt applies but its acknowledgement is lost.
    pub ack_drop_p: f64,
    /// Probability an attempt is delivered twice.
    pub dup_p: f64,
    /// Client timeout before declaring an attempt lost, in simulated
    /// seconds.
    pub timeout_secs: f64,
    /// Base of the exponential backoff, in simulated seconds.
    pub backoff_base_secs: f64,
    /// Cap on a single backoff delay, in simulated seconds. The cap is a
    /// true upper bound: jitter multiplies the *capped* exponential term by
    /// a factor in `[0.5, 1)` and therefore never grows it, so every delay
    /// satisfies `delay <= backoff_max_secs` (see
    /// [`FaultPlan::backoff_secs`]).
    pub backoff_max_secs: f64,
    /// Straggler slowdowns.
    pub stragglers: Vec<StragglerSpec>,
    /// Server outage windows.
    pub outages: Vec<OutageSpec>,
    /// Crash the (non-resumed) run at the start of this round.
    pub crash_round: Option<usize>,
    /// Permanently lost workers.
    pub losses: Vec<LossSpec>,
    /// Machines joining the cluster mid-run.
    pub joins: Vec<JoinSpec>,
    /// Machines gracefully leaving the cluster mid-run.
    pub leaves: Vec<LeaveSpec>,
    /// Heterogeneous per-machine service-time multipliers.
    pub speeds: Vec<SpeedSpec>,
    /// Speculative-backup threshold: when a machine's phase time exceeds
    /// `threshold ×` the median, a backup machine replays its stripes and
    /// the earlier (bit-identical) result wins on the simulated clock.
    pub speculate_threshold: Option<f64>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            drop_p: 0.0,
            ack_drop_p: 0.0,
            dup_p: 0.0,
            timeout_secs: 0.05,
            backoff_base_secs: 0.01,
            backoff_max_secs: 1.0,
            stragglers: Vec::new(),
            outages: Vec::new(),
            crash_round: None,
            losses: Vec::new(),
            joins: Vec::new(),
            leaves: Vec::new(),
            speeds: Vec::new(),
            speculate_threshold: None,
        }
    }
}

/// SplitMix64-style avalanche over a running state word.
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Order-independent hash of one decision point: pure in its coordinates,
/// so any consumer (fault fates here, the serving simulation's arrival
/// process) draws the same value no matter when or how often it asks.
pub fn decision_hash(seed: u64, worker: u32, seq: u64, attempt: u32, salt: u64) -> u64 {
    let mut h = mix64(seed ^ salt.wrapping_mul(0xD6E8_FEB8_6659_FD93));
    h = mix64(h ^ u64::from(worker));
    h = mix64(h ^ seq);
    mix64(h ^ u64::from(attempt))
}

/// Maps a hash to a uniform value in `[0, 1)`.
pub fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

fn phase_by_name(name: &str) -> Option<Phase> {
    Phase::from_name(name)
}

impl FaultPlan {
    /// The fate of `attempt` (0-based) of message `seq` from `worker`.
    /// Pure in `(self.seed, worker, seq, attempt)`.
    pub fn fate(&self, worker: u32, seq: u64, attempt: u32) -> Fate {
        let u = unit(decision_hash(self.seed, worker, seq, attempt, 1));
        if u < self.drop_p {
            Fate::DropRequest
        } else if u < self.drop_p + self.ack_drop_p {
            Fate::DropAck
        } else if u < self.drop_p + self.ack_drop_p + self.dup_p {
            Fate::Duplicate
        } else {
            Fate::Deliver
        }
    }

    /// Exponential backoff with deterministic jitter for retrying `attempt`
    /// of `(worker, seq)`: `min(base · 2^attempt, max) · U[0.5, 1)` where
    /// `U` is hashed from the same coordinates. The jitter factor lies in
    /// `[0.5, 1)` (it can round up to 1.0 in U's top ulp), so the delay is
    /// bounded by
    /// `min(base · 2^attempt, max) / 2 <= delay <= min(base · 2^attempt, max)`
    /// — in particular `delay <= backoff_max_secs` always; the cap applies
    /// to the exponential term and jitter never grows it, so the cap holds
    /// *after* jitter. Pure in `(seed, worker, seq, attempt)`.
    pub fn backoff_secs(&self, worker: u32, seq: u64, attempt: u32) -> f64 {
        let exp = self.backoff_base_secs * 2f64.powi(attempt.min(48) as i32);
        let capped = exp.min(self.backoff_max_secs);
        let j = unit(decision_hash(self.seed, worker, seq, attempt, 2));
        capped * (0.5 + 0.5 * j)
    }

    /// How long an operation arriving at simulated time `now` must wait for
    /// all outage windows covering `now` to pass (0.0 when none do).
    pub fn outage_wait(&self, now: f64) -> f64 {
        self.outages
            .iter()
            .filter(|o| now >= o.start && now < o.start + o.duration)
            .map(|o| o.start + o.duration - now)
            .fold(0.0, f64::max)
    }

    /// True when the plan can perturb message delivery at all (used to
    /// decide whether a run needs the resilience machinery).
    pub fn perturbs_messages(&self) -> bool {
        self.drop_p > 0.0 || self.ack_drop_p > 0.0 || self.dup_p > 0.0 || !self.outages.is_empty()
    }

    /// True when the plan scripts elastic membership: joins, leaves, speed
    /// skew, or speculative backups. The trainer switches to the elastic
    /// dilation model (and initialises the stripe→machine overlay) exactly
    /// when this holds.
    pub fn has_membership_events(&self) -> bool {
        !self.joins.is_empty()
            || !self.leaves.is_empty()
            || !self.speeds.is_empty()
            || self.speculate_threshold.is_some()
    }

    /// Order-sensitive digest of the membership schedule (joins, leaves,
    /// speed factors, speculation threshold — deliberately *not* `lose`
    /// directives, so a checkpoint written before an abort can resume under
    /// a plan with the fatal `lose` removed). Folded into the checkpoint
    /// fingerprint: resuming under a different membership history would
    /// silently change epoch numbering and stripe placement, so it must
    /// fail loudly instead.
    pub fn membership_digest(&self) -> u64 {
        let mut h = mix64(0x454C_4153_5449_4331); // "ELASTIC1"
        for j in &self.joins {
            h = mix64(h ^ 1);
            h = mix64(h ^ u64::from(j.worker));
            h = mix64(h ^ j.round as u64);
        }
        for l in &self.leaves {
            h = mix64(h ^ 2);
            h = mix64(h ^ u64::from(l.worker));
            h = mix64(h ^ l.round as u64);
            h = mix64(
                h ^ match l.policy {
                    LeavePolicy::Handoff => 0,
                    LeavePolicy::Redistribute => 1,
                },
            );
        }
        for s in &self.speeds {
            h = mix64(h ^ 3);
            h = mix64(h ^ u64::from(s.worker));
            h = mix64(h ^ s.factor.to_bits());
        }
        if let Some(t) = self.speculate_threshold {
            h = mix64(h ^ 4);
            h = mix64(h ^ t.to_bits());
        }
        h
    }

    /// Parses the line-based plan format. Blank lines and `#` comments are
    /// ignored. Directives:
    ///
    /// ```text
    /// seed 42
    /// drop 0.05                  # request-loss probability per attempt
    /// ack_drop 0.02              # ack-loss probability per attempt
    /// dup 0.01                   # duplication probability per attempt
    /// timeout_secs 0.05
    /// backoff_base_secs 0.01
    /// backoff_max_secs 1.0
    /// straggler worker=1 factor=3.0 [phase=build_histogram]
    /// outage server=0 start=0.5 dur=0.25
    /// crash round=2
    /// lose worker=2 round=3 policy=redistribute|abort
    /// join worker=3 round=1          # machine joins, takes a re-shard
    /// leave worker=0 round=2 policy=handoff|redistribute
    /// speed worker=1 factor=2.5      # heterogeneous hardware (≥ 1)
    /// speculate threshold=1.5        # backup when > 1.5× median
    /// ```
    ///
    /// Unknown `key=value` tokens on a known directive are rejected with a
    /// line-numbered error (`crash round=2 typo=1` does not parse).
    pub fn parse(text: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for (ln, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |msg: String| format!("fault plan line {}: {msg}", ln + 1);
            let mut toks = line.split_ascii_whitespace();
            let Some(keyword) = toks.next() else { continue };
            let rest: Vec<&str> = toks.collect();
            // Structured directives accept only their declared keys: an
            // unknown or malformed token is an error, not a silent no-op.
            let allowed: Option<&[&str]> = match keyword {
                "straggler" => Some(&["worker", "factor", "phase"]),
                "outage" => Some(&["server", "start", "dur"]),
                "crash" => Some(&["round"]),
                "lose" | "leave" => Some(&["worker", "round", "policy"]),
                "join" => Some(&["worker", "round"]),
                "speed" => Some(&["worker", "factor"]),
                "speculate" => Some(&["threshold"]),
                _ => None,
            };
            if let Some(allowed) = allowed {
                for t in &rest {
                    let Some((key, _)) = t.split_once('=') else {
                        return Err(err(format!("expected key=value, got {t:?}")));
                    };
                    if !allowed.contains(&key) {
                        return Err(err(format!("unknown key {key:?} for {keyword}")));
                    }
                }
            }
            // `key=value` field lookup for the structured directives.
            let field = |name: &str| -> Option<&str> {
                rest.iter()
                    .find_map(|t| t.strip_prefix(name).and_then(|t| t.strip_prefix('=')))
            };
            let req = |name: &str| -> Result<&str, String> {
                field(name).ok_or_else(|| err(format!("missing {name}= field")))
            };
            let scalar = || -> Result<&str, String> {
                match rest.as_slice() {
                    [v] => Ok(v),
                    _ => Err(err(format!("expected exactly one value after {keyword}"))),
                }
            };
            fn num<T: std::str::FromStr>(s: &str, what: &str, ln: usize) -> Result<T, String> {
                s.parse()
                    .map_err(|_| format!("fault plan line {}: bad {what} {s:?}", ln + 1))
            }
            let prob = |s: &str, what: &str| -> Result<f64, String> {
                let v: f64 = num(s, what, ln)?;
                if !(0.0..=1.0).contains(&v) {
                    return Err(err(format!("{what} must be in [0, 1], got {v}")));
                }
                Ok(v)
            };
            match keyword {
                "seed" => plan.seed = num(scalar()?, "seed", ln)?,
                "drop" => plan.drop_p = prob(scalar()?, "drop probability")?,
                "ack_drop" => plan.ack_drop_p = prob(scalar()?, "ack_drop probability")?,
                "dup" => plan.dup_p = prob(scalar()?, "dup probability")?,
                "timeout_secs" => plan.timeout_secs = num(scalar()?, "timeout_secs", ln)?,
                "backoff_base_secs" => {
                    plan.backoff_base_secs = num(scalar()?, "backoff_base_secs", ln)?
                }
                "backoff_max_secs" => {
                    plan.backoff_max_secs = num(scalar()?, "backoff_max_secs", ln)?
                }
                "straggler" => {
                    let factor: f64 = num(req("factor")?, "factor", ln)?;
                    if factor < 1.0 {
                        return Err(err(format!("straggler factor must be ≥ 1, got {factor}")));
                    }
                    let phase = match field("phase") {
                        Some(name) => Some(
                            phase_by_name(name)
                                .ok_or_else(|| err(format!("unknown phase {name:?}")))?,
                        ),
                        None => None,
                    };
                    plan.stragglers.push(StragglerSpec {
                        worker: num(req("worker")?, "worker", ln)?,
                        factor,
                        phase,
                    });
                }
                "outage" => plan.outages.push(OutageSpec {
                    server: num(req("server")?, "server", ln)?,
                    start: num(req("start")?, "start", ln)?,
                    duration: num(req("dur")?, "dur", ln)?,
                }),
                "crash" => plan.crash_round = Some(num(req("round")?, "round", ln)?),
                "lose" => plan.losses.push(LossSpec {
                    worker: num(req("worker")?, "worker", ln)?,
                    round: num(req("round")?, "round", ln)?,
                    policy: match req("policy")? {
                        "redistribute" => LossPolicy::Redistribute,
                        "abort" => LossPolicy::Abort,
                        other => return Err(err(format!("unknown loss policy {other:?}"))),
                    },
                }),
                "join" => plan.joins.push(JoinSpec {
                    worker: num(req("worker")?, "worker", ln)?,
                    round: num(req("round")?, "round", ln)?,
                }),
                "leave" => plan.leaves.push(LeaveSpec {
                    worker: num(req("worker")?, "worker", ln)?,
                    round: num(req("round")?, "round", ln)?,
                    policy: match req("policy")? {
                        "handoff" => LeavePolicy::Handoff,
                        "redistribute" => LeavePolicy::Redistribute,
                        other => return Err(err(format!("unknown leave policy {other:?}"))),
                    },
                }),
                "speed" => {
                    let factor: f64 = num(req("factor")?, "factor", ln)?;
                    if factor < 1.0 {
                        return Err(err(format!("speed factor must be ≥ 1, got {factor}")));
                    }
                    plan.speeds.push(SpeedSpec {
                        worker: num(req("worker")?, "worker", ln)?,
                        factor,
                    });
                }
                "speculate" => {
                    let threshold: f64 = num(req("threshold")?, "threshold", ln)?;
                    if threshold < 1.0 {
                        return Err(err(format!(
                            "speculate threshold must be ≥ 1, got {threshold}"
                        )));
                    }
                    plan.speculate_threshold = Some(threshold);
                }
                other => return Err(err(format!("unknown directive {other:?}"))),
            }
            // Guard against sign errors on durations.
            if plan.timeout_secs < 0.0
                || plan.backoff_base_secs < 0.0
                || plan.backoff_max_secs < 0.0
            {
                return Err(err("timeout/backoff durations must be non-negative".into()));
            }
        }
        let total = plan.drop_p + plan.ack_drop_p + plan.dup_p;
        if total > 1.0 {
            return Err(format!(
                "fault plan: drop + ack_drop + dup probabilities sum to {total} > 1"
            ));
        }
        Ok(plan)
    }
}

/// Aggregated fault effects for one run — the `faults` section of the run
/// report. All fields are deterministic in `(plan, training config)`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FaultSummary {
    /// The plan seed (so reports self-describe the schedule they ran under).
    pub plan_seed: u64,
    /// Delivery attempts lost before reaching the server.
    pub request_drops: u64,
    /// Attempts that applied but whose acknowledgement was lost.
    pub ack_drops: u64,
    /// Attempts delivered twice.
    pub duplicates: u64,
    /// Redundant deliveries absorbed by sequence-id deduplication.
    pub dedup_hits: u64,
    /// Client-side retries (each preceded by a timeout).
    pub retries: u64,
    /// Messages force-delivered after [`MAX_ATTEMPTS`] attempts.
    pub forced_deliveries: u64,
    /// Total simulated seconds spent in timeouts + backoff.
    pub backoff_secs: f64,
    /// Total simulated seconds added by straggler dilation.
    pub straggler_secs: f64,
    /// Total simulated seconds spent waiting out server outages.
    pub outage_wait_secs: f64,
    /// Crashes injected (0 or 1).
    pub crashes: u64,
    /// Workers permanently lost.
    pub workers_lost: u64,
}

/// Aggregated elasticity effects for one run — the `membership` section of
/// the run report. Counters are structural (strict under report diffing);
/// `*_secs` fields are simulated-time stretch that diffs under tolerance.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MembershipSummary {
    /// Machines that joined mid-run.
    pub joins: u64,
    /// Machines that gracefully left mid-run.
    pub leaves: u64,
    /// Logical stripes re-homed by joins and leaves combined.
    pub stripes_moved: u64,
    /// Final membership epoch (bumped once per join/leave).
    pub epoch: u64,
    /// Speculative backups launched against chronic stragglers.
    pub speculative_backups: u64,
    /// Backups whose bit-identical result finished first.
    pub backup_wins: u64,
    /// Stale-epoch operations rejected by the parameter server.
    pub stale_rejects: u64,
    /// Simulated seconds spent streaming stripe state on graceful handoff.
    pub handoff_secs: f64,
    /// Simulated seconds spent cold re-reading stripes on redistribute.
    pub reshard_secs: f64,
    /// Simulated seconds added by elastic load/speed dilation.
    pub elastic_secs: f64,
    /// Simulated seconds saved by winning speculative backups.
    pub speculation_saved_secs: f64,
}

/// One stripe re-homed by a membership event (reported by
/// [`FaultSession::apply_join`] / [`FaultSession::apply_leave`] so the
/// trainer can charge the transfer deterministically).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StripeMove {
    /// Logical stripe id (== the initial shard id).
    pub stripe: u32,
    /// Previous owner.
    pub from: u32,
    /// New owner.
    pub to: u32,
}

/// A speculative-backup decision for one charged interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackupDecision {
    /// Machine whose per-phase time tripped the threshold.
    pub straggler: u32,
    /// Machine replaying the straggler's stripes.
    pub backup: u32,
    /// Dilation factor without speculation.
    pub raw_factor: f64,
    /// Dilation factor with the backup racing the straggler. Strictly less
    /// than `raw_factor` iff the backup wins.
    pub effective_factor: f64,
}

/// The elastic dilation for one phase: multiply charged phase time by
/// `factor`; `backup` describes the speculation race when one launched.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ElasticDilation {
    /// Simulated-time multiplier (≥ 1.0).
    pub factor: f64,
    /// The speculative backup launched for this interval, if any.
    pub backup: Option<BackupDecision>,
}

/// Stripe→machine overlay: which physical machine currently *executes*
/// each logical stripe. Aggregation identity lives entirely in the stripe,
/// so this table affects simulated time only — never model bytes.
#[derive(Debug, Default)]
struct MembershipState {
    /// `assignment[stripe]` = owning machine id.
    assignment: Vec<u32>,
    /// Live machine ids (ordered for deterministic iteration).
    live: BTreeSet<u32>,
    /// Bumped once per join/leave; tags PS dedup so a departed machine's
    /// late retries can never merge into the new epoch.
    epoch: u64,
    summary: MembershipSummary,
}

impl MembershipState {
    fn load(&self, machine: u32) -> usize {
        self.assignment.iter().filter(|&&m| m == machine).count()
    }
}

#[derive(Debug, Default)]
struct SessionState {
    summary: FaultSummary,
    /// Worker currently issuing PS requests (mirrors `TraceBus::set_worker`).
    origin: Option<u32>,
    /// Next per-worker message sequence id.
    next_seq: HashMap<u32, u64>,
    /// Workers permanently lost so far.
    lost: HashSet<u32>,
    /// Elastic membership overlay (`None` until the trainer initialises it
    /// for plans with membership events).
    membership: Option<MembershipState>,
}

/// Shared per-run fault state: the immutable [`FaultPlan`] plus the mutable
/// counters, message sequence ids, and lost-worker set. One session is
/// created per training run and shared (via `Arc`) between the trainer and
/// the parameter server.
#[derive(Debug)]
pub struct FaultSession {
    plan: FaultPlan,
    inner: Mutex<SessionState>,
}

impl FaultSession {
    /// A fresh session for `plan`.
    pub fn new(plan: FaultPlan) -> Arc<Self> {
        let plan_seed = plan.seed;
        Arc::new(FaultSession {
            plan,
            inner: Mutex::new(SessionState {
                summary: FaultSummary {
                    plan_seed,
                    ..FaultSummary::default()
                },
                ..SessionState::default()
            }),
        })
    }

    /// The immutable plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Mirrors `TraceBus::set_worker`: which worker issues the PS requests
    /// that follow (`None` → requests are not subject to message faults).
    pub fn set_worker(&self, worker: Option<u32>) {
        self.inner.lock().origin = worker;
    }

    /// The currently declared requesting worker.
    pub fn current_worker(&self) -> Option<u32> {
        self.inner.lock().origin
    }

    /// Assigns the next message sequence id for `worker`. Ids are monotone
    /// per worker and never reused, which is what makes server-side
    /// deduplication sound.
    pub fn next_seq(&self, worker: u32) -> u64 {
        let mut st = self.inner.lock();
        let seq = st.next_seq.entry(worker).or_insert(0);
        let out = *seq;
        *seq += 1;
        out
    }

    /// Marks `worker` permanently lost.
    pub fn mark_lost(&self, worker: u32) {
        let mut st = self.inner.lock();
        if st.lost.insert(worker) {
            st.summary.workers_lost += 1;
        }
    }

    /// Whether `worker` has been lost.
    pub fn is_lost(&self, worker: u32) -> bool {
        self.inner.lock().lost.contains(&worker)
    }

    /// Simulated-time dilation factor for `phase`: the worst live straggler
    /// times the load multiplier from redistributed shards (a machine that
    /// adopted `n` extra shards runs `1 + n`× slower on every phase).
    pub fn dilation(&self, phase: Phase) -> f64 {
        let st = self.inner.lock();
        let straggler = self
            .plan
            .stragglers
            .iter()
            .filter(|s| !st.lost.contains(&s.worker))
            .filter(|s| s.phase.is_none() || s.phase == Some(phase))
            .map(|s| s.factor)
            .fold(1.0, f64::max);
        straggler * (1.0 + st.lost.len() as f64)
    }

    /// Snapshot of the accumulated counters.
    pub fn summary(&self) -> FaultSummary {
        self.inner.lock().summary
    }

    // ---- counter hooks (called by the PS retry loop / trainer) -----------

    /// Records one request-loss.
    pub fn on_request_drop(&self) {
        self.inner.lock().summary.request_drops += 1;
    }

    /// Records one ack-loss.
    pub fn on_ack_drop(&self) {
        self.inner.lock().summary.ack_drops += 1;
    }

    /// Records one duplicated delivery.
    pub fn on_duplicate(&self) {
        self.inner.lock().summary.duplicates += 1;
    }

    /// Records one redundant delivery absorbed by deduplication.
    pub fn on_dedup_hit(&self) {
        self.inner.lock().summary.dedup_hits += 1;
    }

    /// Records one retry and the timeout + backoff seconds it cost.
    pub fn on_retry(&self, wait_secs: f64) {
        let mut st = self.inner.lock();
        st.summary.retries += 1;
        st.summary.backoff_secs += wait_secs;
    }

    /// Records one forced delivery (retry cap reached).
    pub fn on_forced_delivery(&self) {
        self.inner.lock().summary.forced_deliveries += 1;
    }

    /// Accumulates straggler-dilation seconds.
    pub fn add_straggler_secs(&self, secs: f64) {
        self.inner.lock().summary.straggler_secs += secs;
    }

    /// Accumulates outage-wait seconds.
    pub fn add_outage_wait_secs(&self, secs: f64) {
        self.inner.lock().summary.outage_wait_secs += secs;
    }

    /// Records the injected crash.
    pub fn on_crash(&self) {
        self.inner.lock().summary.crashes += 1;
    }

    // ---- elastic membership (stripe→machine overlay) ---------------------
    //
    // Logical *stripes* are the initial shard set and are immutable for the
    // whole run: the f32 histogram merge at the PS is grouping-sensitive,
    // so bit-identity with the fixed-membership baseline requires that the
    // per-stripe push streams never change. Membership events only re-map
    // stripes to physical machines, which affects the simulated clock and
    // the trace — never model bytes.

    /// Initialises the membership overlay: machines `0..stripes` are live
    /// and machine `i` owns stripe `i` (the initial 1:1 placement). No-op
    /// when already initialised.
    pub fn init_membership(&self, stripes: usize) {
        let mut st = self.inner.lock();
        if st.membership.is_some() {
            return;
        }
        st.membership = Some(MembershipState {
            assignment: (0..stripes as u32).collect(),
            live: (0..stripes as u32).collect(),
            epoch: 0,
            summary: MembershipSummary::default(),
        });
    }

    /// Whether the elastic overlay has been initialised.
    pub fn membership_active(&self) -> bool {
        self.inner.lock().membership.is_some()
    }

    /// Current membership epoch: 0 before any event or without an overlay.
    /// The PS tags deduplication state with this, so operations issued
    /// under an older epoch are rejected instead of merged.
    pub fn membership_epoch(&self) -> u64 {
        self.inner.lock().membership.as_ref().map_or(0, |m| m.epoch)
    }

    /// Snapshot `(stripe→machine assignment, live set, epoch)` for
    /// checkpointing. `None` without an overlay.
    pub fn membership_snapshot(&self) -> Option<(Vec<u32>, Vec<u32>, u64)> {
        let st = self.inner.lock();
        st.membership.as_ref().map(|m| {
            (
                m.assignment.clone(),
                m.live.iter().copied().collect(),
                m.epoch,
            )
        })
    }

    /// Restores a checkpointed overlay snapshot on resume (overwrites any
    /// existing overlay).
    pub fn restore_membership(&self, assignment: Vec<u32>, live: Vec<u32>, epoch: u64) {
        let mut st = self.inner.lock();
        let summary = MembershipSummary {
            epoch,
            ..MembershipSummary::default()
        };
        st.membership = Some(MembershipState {
            assignment,
            live: live.into_iter().collect(),
            epoch,
            summary,
        });
    }

    /// A machine joins: bump the epoch and rebalance deterministically —
    /// while the most-loaded machine (ties → smallest id) carries at least
    /// two more stripes than the joiner, the joiner adopts that machine's
    /// highest-numbered stripe. Returns the stripe moves so the trainer can
    /// charge the transfers.
    pub fn apply_join(&self, worker: u32) -> Result<Vec<StripeMove>, String> {
        let mut st = self.inner.lock();
        let m = st
            .membership
            .as_mut()
            .ok_or("membership overlay not initialised")?;
        if !m.live.insert(worker) {
            return Err(format!("join: machine {worker} is already live"));
        }
        m.epoch += 1;
        m.summary.joins += 1;
        let mut moves = Vec::new();
        loop {
            let (donor, donor_load) =
                m.live
                    .iter()
                    .map(|&id| (id, m.load(id)))
                    .fold(
                        (worker, 0),
                        |acc, (id, load)| {
                            if load > acc.1 {
                                (id, load)
                            } else {
                                acc
                            }
                        },
                    );
            if donor == worker || donor_load < m.load(worker) + 2 {
                break;
            }
            let stripe = (0..m.assignment.len())
                .rev()
                .find(|&s| m.assignment[s] == donor)
                .expect("donor load > 0");
            m.assignment[stripe] = worker;
            m.summary.stripes_moved += 1;
            moves.push(StripeMove {
                stripe: stripe as u32,
                from: donor,
                to: worker,
            });
        }
        m.summary.epoch = m.epoch;
        Ok(moves)
    }

    /// A machine leaves (gracefully or via a loss): bump the epoch and
    /// re-home its stripes deterministically — in stripe order, each goes
    /// to the currently least-loaded live machine (ties → smallest id).
    /// Returns the stripe moves. The last live machine cannot leave.
    pub fn apply_leave(&self, worker: u32) -> Result<Vec<StripeMove>, String> {
        let mut st = self.inner.lock();
        let m = st
            .membership
            .as_mut()
            .ok_or("membership overlay not initialised")?;
        if !m.live.remove(&worker) {
            return Err(format!("leave: machine {worker} is not live"));
        }
        if m.live.is_empty() {
            m.live.insert(worker);
            return Err(format!("leave: machine {worker} is the last live machine"));
        }
        m.epoch += 1;
        m.summary.leaves += 1;
        let mut moves = Vec::new();
        for stripe in 0..m.assignment.len() {
            if m.assignment[stripe] != worker {
                continue;
            }
            let (dest, _) = m
                .live
                .iter()
                .map(|&id| (id, m.load(id)))
                .fold(None, |acc: Option<(u32, usize)>, (id, load)| match acc {
                    Some((_, best)) if best <= load => acc,
                    _ => Some((id, load)),
                })
                .expect("live set is non-empty");
            m.assignment[stripe] = dest;
            m.summary.stripes_moved += 1;
            moves.push(StripeMove {
                stripe: stripe as u32,
                from: worker,
                to: dest,
            });
        }
        m.summary.epoch = m.epoch;
        Ok(moves)
    }

    /// The elastic dilation for `phase`. Each live machine `m` with load
    /// `> 0` would finish its share in
    /// `d_m = speed(m) × load(m) × straggler(m, phase)` units of the clean
    /// per-stripe time; the phase takes the max. With `speculate
    /// threshold=F` and `max > F × median`, a backup launches on the
    /// per-stripe-fastest other machine at time `F × median` and replays
    /// the straggler's stripes from scratch; the earlier bit-identical
    /// result wins, so the effective factor is
    /// `min(max, F × median + rate(backup) × load(straggler))`.
    pub fn membership_dilation(&self, phase: Phase) -> ElasticDilation {
        let st = self.inner.lock();
        let Some(m) = st.membership.as_ref() else {
            return ElasticDilation {
                factor: 1.0,
                backup: None,
            };
        };
        // Per-stripe service rate of one machine: hardware speed × any
        // straggler slowdown matching this phase.
        let rate = |id: u32| -> f64 {
            let speed = self
                .plan
                .speeds
                .iter()
                .filter(|s| s.worker == id)
                .map(|s| s.factor)
                .fold(1.0, f64::max);
            let straggler = self
                .plan
                .stragglers
                .iter()
                .filter(|s| s.worker == id && !st.lost.contains(&s.worker))
                .filter(|s| s.phase.is_none() || s.phase == Some(phase))
                .map(|s| s.factor)
                .fold(1.0, f64::max);
            speed * straggler
        };
        let loaded: Vec<(u32, f64)> = m
            .live
            .iter()
            .filter(|&&id| m.load(id) > 0)
            .map(|&id| (id, rate(id) * m.load(id) as f64))
            .collect();
        let Some(&(_, first)) = loaded.first() else {
            return ElasticDilation {
                factor: 1.0,
                backup: None,
            };
        };
        let (straggler, raw) =
            loaded.iter().fold(
                (loaded[0].0, first),
                |acc, &(id, d)| {
                    if d > acc.1 {
                        (id, d)
                    } else {
                        acc
                    }
                },
            );
        let mut sorted: Vec<f64> = loaded.iter().map(|&(_, d)| d).collect();
        sorted.sort_by(f64::total_cmp);
        let n = sorted.len();
        let median = if n % 2 == 1 {
            sorted[n / 2]
        } else {
            0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
        };
        if let Some(threshold) = self.plan.speculate_threshold {
            let launch = threshold * median;
            let backup_candidate = m
                .live
                .iter()
                .filter(|&&id| id != straggler)
                .map(|&id| (id, rate(id)))
                .fold(None, |acc: Option<(u32, f64)>, (id, r)| match acc {
                    Some((_, best)) if best <= r => acc,
                    _ => Some((id, r)),
                });
            if raw > launch {
                if let Some((backup, backup_rate)) = backup_candidate {
                    let replay = launch + backup_rate * m.load(straggler) as f64;
                    let effective = raw.min(replay);
                    return ElasticDilation {
                        factor: effective.max(1.0),
                        backup: Some(BackupDecision {
                            straggler,
                            backup,
                            raw_factor: raw,
                            effective_factor: effective,
                        }),
                    };
                }
            }
        }
        ElasticDilation {
            factor: raw.max(1.0),
            backup: None,
        }
    }

    /// Snapshot of the accumulated membership counters (`None` without an
    /// overlay, so non-elastic runs keep their reports byte-identical).
    pub fn membership_summary(&self) -> Option<MembershipSummary> {
        self.inner.lock().membership.as_ref().map(|m| m.summary)
    }

    /// Accumulates graceful-handoff transfer seconds.
    pub fn add_handoff_secs(&self, secs: f64) {
        if let Some(m) = self.inner.lock().membership.as_mut() {
            m.summary.handoff_secs += secs;
        }
    }

    /// Accumulates cold re-shard seconds.
    pub fn add_reshard_secs(&self, secs: f64) {
        if let Some(m) = self.inner.lock().membership.as_mut() {
            m.summary.reshard_secs += secs;
        }
    }

    /// Accumulates elastic-dilation seconds.
    pub fn add_elastic_secs(&self, secs: f64) {
        if let Some(m) = self.inner.lock().membership.as_mut() {
            m.summary.elastic_secs += secs;
        }
    }

    /// Records one speculative backup launch (and its win, when the backup
    /// finished first, with the simulated seconds it saved).
    pub fn on_backup(&self, won: bool, saved_secs: f64) {
        if let Some(m) = self.inner.lock().membership.as_mut() {
            m.summary.speculative_backups += 1;
            if won {
                m.summary.backup_wins += 1;
                m.summary.speculation_saved_secs += saved_secs;
            }
        }
    }

    /// Records one stale-epoch operation rejected by the PS.
    pub fn on_stale_reject(&self) {
        if let Some(m) = self.inner.lock().membership.as_mut() {
            m.summary.stale_rejects += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fates_are_deterministic_and_order_independent() {
        let plan = FaultPlan {
            seed: 7,
            drop_p: 0.3,
            ack_drop_p: 0.2,
            dup_p: 0.1,
            ..FaultPlan::default()
        };
        // Same coordinates → same fate, regardless of query order.
        let forward: Vec<Fate> = (0..50).map(|s| plan.fate(1, s, 0)).collect();
        let backward: Vec<Fate> = (0..50).rev().map(|s| plan.fate(1, s, 0)).collect();
        assert_eq!(
            forward,
            backward.into_iter().rev().collect::<Vec<_>>(),
            "fates must not depend on query order"
        );
        // All four fates occur at these probabilities over enough messages.
        let fates: Vec<Fate> = (0..2000).map(|s| plan.fate(0, s, 0)).collect();
        for f in [
            Fate::Deliver,
            Fate::DropRequest,
            Fate::DropAck,
            Fate::Duplicate,
        ] {
            assert!(fates.contains(&f), "{f:?} never occurred");
        }
        // Empirical drop rate within a loose tolerance of the plan's.
        // n = 2000 Bernoulli(0.3) draws: sd ≈ sqrt(0.3·0.7/2000) ≈ 0.0102,
        // so ±0.05 is ~5 sd — effectively never flaky for a fixed seed.
        let drops = fates.iter().filter(|&&f| f == Fate::DropRequest).count();
        let rate = drops as f64 / 2000.0;
        assert!((rate - 0.3).abs() < 0.05, "drop rate {rate}");
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let a = FaultPlan {
            seed: 1,
            drop_p: 0.5,
            ..FaultPlan::default()
        };
        let b = FaultPlan {
            seed: 2,
            ..a.clone()
        };
        let fa: Vec<Fate> = (0..64).map(|s| a.fate(0, s, 0)).collect();
        let fb: Vec<Fate> = (0..64).map(|s| b.fate(0, s, 0)).collect();
        assert_ne!(fa, fb);
    }

    #[test]
    fn backoff_grows_exponentially_until_capped() {
        let plan = FaultPlan {
            backoff_base_secs: 0.01,
            backoff_max_secs: 0.5,
            ..FaultPlan::default()
        };
        // Jitter is in [0.5, 1): bounds follow from min(base·2^a, max).
        for attempt in 0..12 {
            let ideal = (0.01 * 2f64.powi(attempt)).min(0.5);
            let b = plan.backoff_secs(3, 9, attempt as u32);
            assert!(b >= ideal * 0.5 && b < ideal, "attempt {attempt}: {b}");
        }
        // Deterministic.
        assert_eq!(plan.backoff_secs(3, 9, 4), plan.backoff_secs(3, 9, 4));
    }

    #[test]
    fn outage_wait_covers_windows() {
        let plan = FaultPlan {
            outages: vec![
                OutageSpec {
                    server: 0,
                    start: 1.0,
                    duration: 0.5,
                },
                OutageSpec {
                    server: 1,
                    start: 1.25,
                    duration: 0.5,
                },
            ],
            ..FaultPlan::default()
        };
        assert_eq!(plan.outage_wait(0.5), 0.0);
        assert!((plan.outage_wait(1.0) - 0.5).abs() < 1e-12);
        // Overlapping windows: wait for the later one to clear.
        assert!((plan.outage_wait(1.3) - 0.45).abs() < 1e-12);
        assert_eq!(plan.outage_wait(2.0), 0.0);
    }

    #[test]
    fn parses_full_plan() {
        let text = "\
# chaos for the smoke config
seed 42
drop 0.05
ack_drop 0.02
dup 0.01
timeout_secs 0.02
backoff_base_secs 0.005
backoff_max_secs 0.25

straggler worker=1 factor=3.0 phase=build_histogram
straggler worker=0 factor=1.5
outage server=0 start=0.5 dur=0.25
crash round=2
lose worker=2 round=3 policy=redistribute
";
        let plan = FaultPlan::parse(text).unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.drop_p, 0.05);
        assert_eq!(plan.ack_drop_p, 0.02);
        assert_eq!(plan.dup_p, 0.01);
        assert_eq!(plan.timeout_secs, 0.02);
        assert_eq!(plan.stragglers.len(), 2);
        assert_eq!(plan.stragglers[0].phase, Some(Phase::BuildHistogram));
        assert_eq!(plan.stragglers[1].phase, None);
        assert_eq!(plan.outages.len(), 1);
        assert_eq!(plan.crash_round, Some(2));
        assert_eq!(
            plan.losses,
            vec![LossSpec {
                worker: 2,
                round: 3,
                policy: LossPolicy::Redistribute,
            }]
        );
        assert!(plan.perturbs_messages());
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(FaultPlan::parse("drop 1.5").is_err());
        assert!(FaultPlan::parse("drop -0.1").is_err());
        assert!(FaultPlan::parse("drop 0.6\nack_drop 0.6").is_err());
        assert!(FaultPlan::parse("straggler worker=0 factor=0.5").is_err());
        assert!(FaultPlan::parse("straggler worker=0 factor=2 phase=nope").is_err());
        assert!(FaultPlan::parse("lose worker=0 round=1 policy=shrug").is_err());
        assert!(FaultPlan::parse("warp speed=9").is_err());
        assert!(FaultPlan::parse("seed 1 2").is_err());
        assert!(FaultPlan::parse("crash when=now").is_err());
        // The error names the offending line.
        let err = FaultPlan::parse("seed 1\ndrop nope").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn parses_membership_directives() {
        let text = "\
join worker=3 round=1
leave worker=0 round=2 policy=handoff
leave worker=1 round=3 policy=redistribute
speed worker=2 factor=2.5
speculate threshold=1.5
";
        let plan = FaultPlan::parse(text).unwrap();
        assert_eq!(
            plan.joins,
            vec![JoinSpec {
                worker: 3,
                round: 1
            }]
        );
        assert_eq!(
            plan.leaves,
            vec![
                LeaveSpec {
                    worker: 0,
                    round: 2,
                    policy: LeavePolicy::Handoff,
                },
                LeaveSpec {
                    worker: 1,
                    round: 3,
                    policy: LeavePolicy::Redistribute,
                },
            ]
        );
        assert_eq!(
            plan.speeds,
            vec![SpeedSpec {
                worker: 2,
                factor: 2.5,
            }]
        );
        assert_eq!(plan.speculate_threshold, Some(1.5));
        assert!(plan.has_membership_events());
        assert!(!FaultPlan::default().has_membership_events());
        // Membership directives alone do not perturb message delivery.
        assert!(!plan.perturbs_messages());
    }

    #[test]
    fn parse_rejects_bad_membership_input() {
        assert!(FaultPlan::parse("join worker=1").is_err()); // missing round
        assert!(FaultPlan::parse("leave worker=1 round=2").is_err()); // missing policy
        assert!(FaultPlan::parse("leave worker=1 round=2 policy=abort").is_err());
        assert!(FaultPlan::parse("speed worker=1 factor=0.5").is_err()); // < 1
        assert!(FaultPlan::parse("speculate threshold=0.9").is_err()); // < 1
        let err = FaultPlan::parse("seed 1\nspeed worker=1 factor=nope").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn parse_rejects_unknown_keys_on_every_directive() {
        for line in [
            "straggler worker=0 factor=2 typo=1",
            "outage server=0 start=0.5 dur=0.25 extra=x",
            "crash round=2 typo=1",
            "lose worker=0 round=1 policy=abort x=1",
            "join worker=3 round=1 shard=2",
            "leave worker=0 round=1 policy=handoff when=now",
            "speed worker=1 factor=2 phase=finish",
            "speculate threshold=1.5 worker=0",
            "join worker=3 round=1 bare",
        ] {
            let err = FaultPlan::parse(&format!("seed 1\n{line}")).unwrap_err();
            assert!(err.contains("line 2"), "{line}: {err}");
        }
    }

    #[test]
    fn membership_digest_covers_elastic_directives_only() {
        let base = FaultPlan::parse("join worker=3 round=1\nspeed worker=1 factor=2").unwrap();
        // `lose` and message faults do not move the digest …
        let with_lose =
            FaultPlan::parse("join worker=3 round=1\nspeed worker=1 factor=2\ndrop 0.1\nlose worker=0 round=2 policy=abort")
                .unwrap();
        assert_eq!(base.membership_digest(), with_lose.membership_digest());
        // … but every elastic directive does.
        for extra in [
            "join worker=4 round=2",
            "leave worker=0 round=2 policy=handoff",
            "leave worker=0 round=2 policy=redistribute",
            "speed worker=2 factor=3",
            "speculate threshold=1.5",
        ] {
            let changed = FaultPlan::parse(&format!(
                "join worker=3 round=1\nspeed worker=1 factor=2\n{extra}"
            ))
            .unwrap();
            assert_ne!(
                base.membership_digest(),
                changed.membership_digest(),
                "{extra}"
            );
        }
        assert_eq!(
            base.membership_digest(),
            base.clone().membership_digest(),
            "digest is pure"
        );
    }

    #[test]
    fn join_and_leave_rebalance_deterministically() {
        let s = FaultSession::new(FaultPlan::default());
        // No overlay yet: events fail loudly, epoch stays 0.
        assert!(s.apply_join(3).is_err());
        assert_eq!(s.membership_epoch(), 0);
        s.init_membership(3);
        assert!(s.membership_active());
        // Joining an already-live machine is an error.
        assert!(s.apply_join(2).is_err());
        // 3 stripes over 3 machines: a joiner finds no gap ≥ 2, takes none.
        let moves = s.apply_join(3).unwrap();
        assert!(moves.is_empty());
        assert_eq!(s.membership_epoch(), 1);
        // Machine 0 leaves: stripe 0 goes to the least-loaded machine with
        // the smallest id — the empty joiner 3.
        let moves = s.apply_leave(0).unwrap();
        assert_eq!(
            moves,
            vec![StripeMove {
                stripe: 0,
                from: 0,
                to: 3,
            }]
        );
        assert_eq!(s.membership_epoch(), 2);
        // Machine 3 leaves again: its stripe lands on machine 1 (smallest
        // id among the tied machines 1 and 2).
        let moves = s.apply_leave(3).unwrap();
        assert_eq!(
            moves,
            vec![StripeMove {
                stripe: 0,
                from: 3,
                to: 1,
            }]
        );
        // Machine 1 now owns stripes {0, 1}; a fresh joiner takes its
        // highest-numbered stripe to close the gap.
        let moves = s.apply_join(7).unwrap();
        assert_eq!(
            moves,
            vec![StripeMove {
                stripe: 1,
                from: 1,
                to: 7,
            }]
        );
        // Leaving a non-live machine is an error; so is the last machine.
        assert!(s.apply_leave(0).is_err());
        let sum = s.membership_summary().unwrap();
        assert_eq!(sum.joins, 2);
        assert_eq!(sum.leaves, 2);
        assert_eq!(sum.stripes_moved, 3);
        assert_eq!(sum.epoch, 4);
        // Snapshot / restore round-trips the overlay.
        let (assignment, live, epoch) = s.membership_snapshot().unwrap();
        let t = FaultSession::new(FaultPlan::default());
        t.restore_membership(assignment.clone(), live.clone(), epoch);
        assert_eq!(t.membership_snapshot().unwrap(), (assignment, live, epoch));
    }

    #[test]
    fn last_machine_cannot_leave() {
        let s = FaultSession::new(FaultPlan::default());
        s.init_membership(1);
        let err = s.apply_leave(0).unwrap_err();
        assert!(err.contains("last live machine"), "{err}");
        // The failed leave did not mutate the overlay.
        assert_eq!(s.membership_epoch(), 0);
        assert_eq!(s.membership_snapshot().unwrap().1, vec![0]);
    }

    #[test]
    fn elastic_dilation_tracks_load_speed_and_stragglers() {
        let plan = FaultPlan::parse(
            "speed worker=1 factor=3\nstraggler worker=2 factor=2 phase=build_histogram",
        )
        .unwrap();
        let s = FaultSession::new(plan);
        // Without an overlay the elastic model is inert.
        assert_eq!(s.membership_dilation(Phase::Finish).factor, 1.0);
        s.init_membership(3);
        // Uniform 1-stripe loads: machine 1 runs 3× slow everywhere, and
        // machine 2 runs 2× slow in build_histogram only.
        assert_eq!(s.membership_dilation(Phase::Finish).factor, 3.0);
        assert_eq!(s.membership_dilation(Phase::BuildHistogram).factor, 3.0);
        // Machine 1 leaves; its stripe lands on machine 0 (load 2).
        s.apply_leave(1).unwrap();
        assert_eq!(s.membership_dilation(Phase::Finish).factor, 2.0);
        // In build_histogram the straggler (1 stripe × 2) ties the doubled
        // machine 0; max is still 2.
        assert_eq!(s.membership_dilation(Phase::BuildHistogram).factor, 2.0);
    }

    #[test]
    fn speculation_races_a_backup_against_the_straggler() {
        let plan = FaultPlan::parse("speed worker=0 factor=6\nspeculate threshold=1.5").unwrap();
        let s = FaultSession::new(plan);
        s.init_membership(3);
        // d = [6, 1, 1]; median 1, threshold trips at 1.5; the backup
        // (machine 1, rate 1) replays stripe 0 by 1.5 + 1 = 2.5 < 6.
        let d = s.membership_dilation(Phase::BuildHistogram);
        let b = d.backup.expect("backup launched");
        assert_eq!(b.straggler, 0);
        assert_eq!(b.backup, 1);
        assert_eq!(b.raw_factor, 6.0);
        assert!((b.effective_factor - 2.5).abs() < 1e-12, "{b:?}");
        assert_eq!(d.factor, b.effective_factor);
        // A losing backup: straggler barely over the threshold, replay from
        // scratch is slower, so the straggler's own finish stands.
        let plan = FaultPlan::parse("speed worker=0 factor=2\nspeculate threshold=1.2").unwrap();
        let s = FaultSession::new(plan);
        s.init_membership(3);
        let d = s.membership_dilation(Phase::BuildHistogram);
        let b = d.backup.expect("backup launched");
        assert_eq!(b.raw_factor, 2.0);
        assert!((b.effective_factor - 2.0).abs() < 1e-12, "{b:?}");
        assert_eq!(d.factor, 2.0);
        // Below the threshold no backup launches at all.
        let plan = FaultPlan::parse("speed worker=0 factor=2\nspeculate threshold=3").unwrap();
        let s = FaultSession::new(plan);
        s.init_membership(3);
        assert!(s
            .membership_dilation(Phase::BuildHistogram)
            .backup
            .is_none());
    }

    #[test]
    fn membership_summary_accumulates() {
        let s = FaultSession::new(FaultPlan::default());
        // Hooks are inert without an overlay.
        s.add_elastic_secs(1.0);
        s.on_backup(true, 0.5);
        assert!(s.membership_summary().is_none());
        s.init_membership(2);
        s.add_handoff_secs(0.25);
        s.add_reshard_secs(0.5);
        s.add_elastic_secs(1.5);
        s.on_backup(false, 0.0);
        s.on_backup(true, 0.75);
        s.on_stale_reject();
        let sum = s.membership_summary().unwrap();
        assert!((sum.handoff_secs - 0.25).abs() < 1e-12);
        assert!((sum.reshard_secs - 0.5).abs() < 1e-12);
        assert!((sum.elastic_secs - 1.5).abs() < 1e-12);
        assert_eq!(sum.speculative_backups, 2);
        assert_eq!(sum.backup_wins, 1);
        assert!((sum.speculation_saved_secs - 0.75).abs() < 1e-12);
        assert_eq!(sum.stale_rejects, 1);
    }

    #[test]
    fn session_tracks_seqs_losses_and_dilation() {
        let plan = FaultPlan {
            stragglers: vec![
                StragglerSpec {
                    worker: 0,
                    factor: 2.0,
                    phase: Some(Phase::BuildHistogram),
                },
                StragglerSpec {
                    worker: 1,
                    factor: 4.0,
                    phase: None,
                },
            ],
            ..FaultPlan::default()
        };
        let s = FaultSession::new(plan);
        assert_eq!(s.next_seq(0), 0);
        assert_eq!(s.next_seq(0), 1);
        assert_eq!(s.next_seq(1), 0);
        assert_eq!(s.dilation(Phase::BuildHistogram), 4.0);
        assert_eq!(s.dilation(Phase::Finish), 4.0);
        // Losing the all-phase straggler leaves the phase-specific one, but
        // the adopted shard doubles every phase.
        s.mark_lost(1);
        s.mark_lost(1); // idempotent
        assert!(s.is_lost(1));
        assert_eq!(s.summary().workers_lost, 1);
        assert_eq!(s.dilation(Phase::BuildHistogram), 4.0); // 2.0 × (1 + 1)
        assert_eq!(s.dilation(Phase::Finish), 2.0); // 1.0 × (1 + 1)
    }

    #[test]
    fn summary_accumulates() {
        let s = FaultSession::new(FaultPlan {
            seed: 9,
            ..FaultPlan::default()
        });
        s.on_request_drop();
        s.on_ack_drop();
        s.on_duplicate();
        s.on_dedup_hit();
        s.on_retry(0.125);
        s.on_retry(0.25);
        s.on_forced_delivery();
        s.add_straggler_secs(1.5);
        s.add_outage_wait_secs(0.5);
        s.on_crash();
        let sum = s.summary();
        assert_eq!(sum.plan_seed, 9);
        assert_eq!(sum.request_drops, 1);
        assert_eq!(sum.ack_drops, 1);
        assert_eq!(sum.duplicates, 1);
        assert_eq!(sum.dedup_hits, 1);
        assert_eq!(sum.retries, 2);
        assert_eq!(sum.forced_deliveries, 1);
        assert!((sum.backoff_secs - 0.375).abs() < 1e-12);
        assert!((sum.straggler_secs - 1.5).abs() < 1e-12);
        assert!((sum.outage_wait_secs - 0.5).abs() < 1e-12);
        assert_eq!(sum.crashes, 1);
    }
}
