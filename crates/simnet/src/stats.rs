use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::SimTime;

/// Accumulated communication statistics: what moved, how many packages, and
/// how much simulated time it cost. Used by the trainer to decompose run
/// time into computation and communication (Figure 13 of the paper).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CommStats {
    /// Total payload bytes moved over the simulated network.
    pub bytes: u64,
    /// Number of packages (point-to-point messages).
    pub packages: u64,
    /// Simulated communication time. Parallel transfers within one
    /// collective are already collapsed to the critical path.
    pub sim_time: SimTime,
}

impl CommStats {
    /// A zeroed record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one logical transfer event.
    pub fn record(&mut self, bytes: u64, packages: u64, time: SimTime) {
        self.bytes += bytes;
        self.packages += packages;
        self.sim_time += time;
    }

    /// Adds another record into this one.
    pub fn absorb(&mut self, other: &CommStats) {
        self.bytes += other.bytes;
        self.packages += other.packages;
        self.sim_time += other.sim_time;
    }
}

/// A thread-safe, shareable [`CommStats`] accumulator. The parameter server
/// and the collectives all record into one of these so a training run ends
/// with a single communication ledger.
#[derive(Debug, Clone, Default)]
pub struct StatsRecorder {
    inner: Arc<Mutex<CommStats>>,
}

impl StatsRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one event.
    pub fn record(&self, bytes: u64, packages: u64, time: SimTime) {
        self.inner.lock().record(bytes, packages, time);
    }

    /// Adds a whole [`CommStats`] (e.g. a collective's report).
    pub fn absorb(&self, stats: &CommStats) {
        self.inner.lock().absorb(stats);
    }

    /// Snapshot of the current totals.
    pub fn snapshot(&self) -> CommStats {
        *self.inner.lock()
    }

    /// Resets the totals to zero and returns what was accumulated.
    pub fn take(&self) -> CommStats {
        std::mem::take(&mut *self.inner.lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_absorb() {
        let mut a = CommStats::new();
        a.record(100, 2, SimTime(0.5));
        let mut b = CommStats::new();
        b.record(50, 1, SimTime(0.25));
        a.absorb(&b);
        assert_eq!(a.bytes, 150);
        assert_eq!(a.packages, 3);
        assert!((a.sim_time.seconds() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn recorder_is_shared() {
        let r = StatsRecorder::new();
        let r2 = r.clone();
        r.record(10, 1, SimTime(0.1));
        r2.record(20, 1, SimTime(0.2));
        let snap = r.snapshot();
        assert_eq!(snap.bytes, 30);
        assert_eq!(snap.packages, 2);
    }

    #[test]
    fn recorder_concurrent_updates() {
        let r = StatsRecorder::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let r = r.clone();
                scope.spawn(move || {
                    for _ in 0..1000 {
                        r.record(1, 1, SimTime(0.001));
                    }
                });
            }
        });
        let snap = r.snapshot();
        assert_eq!(snap.bytes, 8000);
        assert_eq!(snap.packages, 8000);
        assert!((snap.sim_time.seconds() - 8.0).abs() < 1e-6);
    }

    #[test]
    fn take_resets() {
        let r = StatsRecorder::new();
        r.record(5, 1, SimTime(1.0));
        let taken = r.take();
        assert_eq!(taken.bytes, 5);
        assert_eq!(r.snapshot(), CommStats::default());
    }
}
