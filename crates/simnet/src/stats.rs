use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::trace::TraceBus;
use crate::SimTime;

/// The seven phases of the DimBoost worker execution plan (Figure 7), used
/// to attribute communication and computation to the step that caused it.
///
/// [`Phase::Other`] is the catch-all for events recorded through untagged
/// legacy entry points; a fully instrumented run leaves it empty.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Phase {
    /// Workers build local per-feature quantile sketches and push them.
    CreateSketch,
    /// Workers pull the merged sketches and derive split candidates.
    PullSketch,
    /// Tree setup: feature sampling, layout install, gradient computation.
    NewTree,
    /// Local histogram construction and the push to the servers.
    BuildHistogram,
    /// Server-side split scans, pulls of the winners, decision publishing.
    FindSplit,
    /// Decision broadcast and node-to-instance index updates.
    SplitTree,
    /// End-of-round work: score updates, loss aggregation.
    Finish,
    /// Untagged events (legacy [`StatsRecorder::record`] / `absorb`).
    Other,
}

impl Phase {
    /// Number of distinct phases (the size of a per-phase table).
    pub const COUNT: usize = 8;

    /// Every phase, in execution-plan order.
    pub const ALL: [Phase; Phase::COUNT] = [
        Phase::CreateSketch,
        Phase::PullSketch,
        Phase::NewTree,
        Phase::BuildHistogram,
        Phase::FindSplit,
        Phase::SplitTree,
        Phase::Finish,
        Phase::Other,
    ];

    /// Stable snake_case name, used in reports and JSON output.
    pub fn name(self) -> &'static str {
        match self {
            Phase::CreateSketch => "create_sketch",
            Phase::PullSketch => "pull_sketch",
            Phase::NewTree => "new_tree",
            Phase::BuildHistogram => "build_histogram",
            Phase::FindSplit => "find_split",
            Phase::SplitTree => "split_tree",
            Phase::Finish => "finish",
            Phase::Other => "other",
        }
    }

    /// Dense index into a `[T; Phase::COUNT]` table.
    pub fn index(self) -> usize {
        match self {
            Phase::CreateSketch => 0,
            Phase::PullSketch => 1,
            Phase::NewTree => 2,
            Phase::BuildHistogram => 3,
            Phase::FindSplit => 4,
            Phase::SplitTree => 5,
            Phase::Finish => 6,
            Phase::Other => 7,
        }
    }

    /// Inverse of [`Phase::name`]: the phase whose snake_case name is
    /// `name`, if any. Used by every textual format that round-trips phases
    /// (fault plans, the events-text trace).
    pub fn from_name(name: &str) -> Option<Phase> {
        Phase::ALL.into_iter().find(|p| p.name() == name)
    }
}

/// Accumulated communication statistics: what moved, how many packages, and
/// how much simulated time it cost. Used by the trainer to decompose run
/// time into computation and communication (Figure 13 of the paper).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CommStats {
    /// Total payload bytes moved over the simulated network.
    pub bytes: u64,
    /// Number of packages (point-to-point messages).
    pub packages: u64,
    /// Simulated communication time. Parallel transfers within one
    /// collective are already collapsed to the critical path.
    pub sim_time: SimTime,
}

impl CommStats {
    /// A zeroed record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one logical transfer event.
    pub fn record(&mut self, bytes: u64, packages: u64, time: SimTime) {
        self.bytes += bytes;
        self.packages += packages;
        self.sim_time += time;
    }

    /// Adds another record into this one.
    pub fn absorb(&mut self, other: &CommStats) {
        self.bytes += other.bytes;
        self.packages += other.packages;
        self.sim_time += other.sim_time;
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.bytes == 0 && self.packages == 0 && self.sim_time.seconds() == 0.0
    }
}

/// A communication ledger broken down by [`Phase`].
///
/// Only the per-phase buckets are stored; [`CommLedger::total`] folds them
/// in [`Phase::ALL`] order. That makes the invariant *sum of per-phase
/// entries == total* structural — any consumer that re-sums the buckets in
/// plan order reproduces the aggregate bit-for-bit, including the `f64`
/// simulated time (summing in event order instead could differ in the last
/// ulp).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CommLedger {
    per_phase: [CommStats; Phase::COUNT],
}

impl CommLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one event under `phase`.
    pub fn record(&mut self, phase: Phase, bytes: u64, packages: u64, time: SimTime) {
        self.per_phase[phase.index()].record(bytes, packages, time);
    }

    /// Adds a whole [`CommStats`] under `phase`.
    pub fn absorb(&mut self, phase: Phase, stats: &CommStats) {
        self.per_phase[phase.index()].absorb(stats);
    }

    /// Merges another ledger into this one, phase by phase.
    pub fn absorb_ledger(&mut self, other: &CommLedger) {
        for phase in Phase::ALL {
            self.absorb(phase, other.phase(phase));
        }
    }

    /// The aggregate over all phases (folded in plan order).
    pub fn total(&self) -> CommStats {
        let mut total = CommStats::new();
        for stats in &self.per_phase {
            total.absorb(stats);
        }
        total
    }

    /// One phase's accumulated statistics.
    pub fn phase(&self, phase: Phase) -> &CommStats {
        &self.per_phase[phase.index()]
    }

    /// `(phase, stats)` pairs with activity, in execution-plan order.
    pub fn entries(&self) -> impl Iterator<Item = (Phase, &CommStats)> {
        Phase::ALL
            .into_iter()
            .map(|p| (p, self.phase(p)))
            .filter(|(_, s)| !s.is_empty())
    }
}

/// A thread-safe, shareable [`CommLedger`] accumulator. The parameter server
/// and the collectives all record into one of these so a training run ends
/// with a single communication ledger, attributed by phase.
///
/// The untagged [`StatsRecorder::record`] / [`StatsRecorder::absorb`] entry
/// points remain for callers that predate phase attribution; they file
/// events under [`Phase::Other`].
///
/// When a [`TraceBus`] is attached, every record additionally emits exactly
/// one trace event with the same `(phase, bytes, packages, sim_time)` — this
/// single funnel is what makes "trace comm events sum to the ledger
/// bit-exactly" hold by construction rather than by convention.
#[derive(Debug, Clone, Default)]
pub struct StatsRecorder {
    inner: Arc<Mutex<CommLedger>>,
    trace: Arc<Mutex<Option<TraceBus>>>,
}

impl StatsRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mirrors every subsequent record onto `bus` as a trace event.
    pub fn attach_trace(&self, bus: TraceBus) {
        *self.trace.lock() = Some(bus);
    }

    /// Records one event without attribution (files under [`Phase::Other`]).
    pub fn record(&self, bytes: u64, packages: u64, time: SimTime) {
        self.record_tagged(Phase::Other, bytes, packages, time);
    }

    /// Records one event under `phase`.
    pub fn record_tagged(&self, phase: Phase, bytes: u64, packages: u64, time: SimTime) {
        self.record_named(phase, phase.name(), bytes, packages, time);
    }

    /// Records one event under `phase` with an operation name for the trace
    /// (e.g. `push_histogram`). The ledger ignores the name.
    pub fn record_named(
        &self,
        phase: Phase,
        name: &'static str,
        bytes: u64,
        packages: u64,
        time: SimTime,
    ) {
        self.inner.lock().record(phase, bytes, packages, time);
        if let Some(bus) = &*self.trace.lock() {
            bus.on_request(phase, name, bytes, packages, time);
        }
    }

    /// Records a pure simulated-time charge (no bytes, no packages) under
    /// `phase`. On the trace this is a barrier that advances the global
    /// simulated clock.
    pub fn charge(&self, phase: Phase, time: SimTime) {
        self.inner.lock().record(phase, 0, 0, time);
        if let Some(bus) = &*self.trace.lock() {
            bus.on_charge(phase, time);
        }
    }

    /// Mirrors a fault event onto the attached trace bus (no ledger entry —
    /// the simulated time a fault costs is charged separately through
    /// [`StatsRecorder::charge`], which keeps the ledger-sum invariant
    /// intact).
    pub fn fault_event(
        &self,
        phase: Phase,
        name: &'static str,
        dur: SimTime,
        bytes: u64,
        count: u64,
    ) {
        if let Some(bus) = &*self.trace.lock() {
            bus.on_fault(phase, name, dur, bytes, count);
        }
    }

    /// Mirrors an elastic-membership event onto the attached trace bus (no
    /// ledger entry — like [`StatsRecorder::fault_event`], the simulated
    /// time a membership change costs is charged separately through
    /// [`StatsRecorder::charge`]).
    pub fn membership_event(
        &self,
        phase: Phase,
        name: &'static str,
        dur: SimTime,
        bytes: u64,
        count: u64,
    ) {
        if let Some(bus) = &*self.trace.lock() {
            bus.on_membership(phase, name, dur, bytes, count);
        }
    }

    /// Merges a previously accumulated ledger (a checkpoint's) into this
    /// recorder *without* emitting trace events: the restored history
    /// already happened in the run being resumed; replaying it would
    /// double-count events and advance the simulated clock twice.
    pub fn preload(&self, ledger: &CommLedger) {
        self.inner.lock().absorb_ledger(ledger);
    }

    /// Adds a whole [`CommStats`] (e.g. a collective's report) without
    /// attribution.
    pub fn absorb(&self, stats: &CommStats) {
        self.absorb_tagged(Phase::Other, stats);
    }

    /// Adds a whole [`CommStats`] under `phase`.
    pub fn absorb_tagged(&self, phase: Phase, stats: &CommStats) {
        self.absorb_named(phase, phase.name(), stats);
    }

    /// Adds a whole [`CommStats`] under `phase` with an operation name for
    /// the trace.
    pub fn absorb_named(&self, phase: Phase, name: &'static str, stats: &CommStats) {
        self.inner.lock().absorb(phase, stats);
        if let Some(bus) = &*self.trace.lock() {
            bus.on_request(phase, name, stats.bytes, stats.packages, stats.sim_time);
        }
    }

    /// Snapshot of the current totals (aggregate over all phases).
    pub fn snapshot(&self) -> CommStats {
        self.inner.lock().total()
    }

    /// Snapshot of the full per-phase ledger.
    pub fn ledger(&self) -> CommLedger {
        self.inner.lock().clone()
    }

    /// Resets the ledger and returns the aggregate that was accumulated.
    pub fn take(&self) -> CommStats {
        std::mem::take(&mut *self.inner.lock()).total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_absorb() {
        let mut a = CommStats::new();
        a.record(100, 2, SimTime(0.5));
        let mut b = CommStats::new();
        b.record(50, 1, SimTime(0.25));
        a.absorb(&b);
        assert_eq!(a.bytes, 150);
        assert_eq!(a.packages, 3);
        assert!((a.sim_time.seconds() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn recorder_is_shared() {
        let r = StatsRecorder::new();
        let r2 = r.clone();
        r.record(10, 1, SimTime(0.1));
        r2.record(20, 1, SimTime(0.2));
        let snap = r.snapshot();
        assert_eq!(snap.bytes, 30);
        assert_eq!(snap.packages, 2);
    }

    #[test]
    fn recorder_concurrent_updates() {
        let r = StatsRecorder::new();
        // Test-only thread spawn (this module is #[cfg(test)]): it
        // deliberately hammers the recorder from raw OS threads to prove
        // thread safety. Production hot paths never spawn per call — they
        // run on the persistent pool in `dimboost-core::pool`.
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let r = r.clone();
                scope.spawn(move || {
                    for _ in 0..1000 {
                        r.record(1, 1, SimTime(0.001));
                    }
                });
            }
        });
        let snap = r.snapshot();
        assert_eq!(snap.bytes, 8000);
        assert_eq!(snap.packages, 8000);
        assert!((snap.sim_time.seconds() - 8.0).abs() < 1e-6);
    }

    #[test]
    fn take_resets() {
        let r = StatsRecorder::new();
        r.record(5, 1, SimTime(1.0));
        let taken = r.take();
        assert_eq!(taken.bytes, 5);
        assert_eq!(r.snapshot(), CommStats::default());
    }

    #[test]
    fn ledger_sums_to_total() {
        let mut ledger = CommLedger::new();
        ledger.record(Phase::CreateSketch, 100, 1, SimTime(0.1));
        ledger.record(Phase::BuildHistogram, 400, 4, SimTime(0.4));
        ledger.record(Phase::BuildHistogram, 600, 2, SimTime(0.2));
        ledger.record(Phase::FindSplit, 48, 3, SimTime(0.05));
        let mut summed = CommStats::new();
        for phase in Phase::ALL {
            summed.absorb(ledger.phase(phase));
        }
        assert_eq!(summed, ledger.total());
        assert_eq!(ledger.phase(Phase::BuildHistogram).bytes, 1000);
        assert_eq!(ledger.phase(Phase::SplitTree), &CommStats::default());
    }

    #[test]
    fn untagged_records_land_in_other() {
        let r = StatsRecorder::new();
        r.record(10, 1, SimTime(0.1));
        let mut extra = CommStats::new();
        extra.record(5, 1, SimTime(0.05));
        r.absorb(&extra);
        let ledger = r.ledger();
        assert_eq!(ledger.phase(Phase::Other).bytes, 15);
        assert_eq!(ledger.total().bytes, 15);
    }

    #[test]
    fn ledger_entries_skip_empty_phases() {
        let r = StatsRecorder::new();
        r.record_tagged(Phase::NewTree, 4, 1, SimTime::ZERO);
        r.record_tagged(Phase::SplitTree, 64, 1, SimTime(0.2));
        let ledger = r.ledger();
        let entries: Vec<(Phase, CommStats)> = ledger.entries().map(|(p, s)| (p, *s)).collect();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].0, Phase::NewTree);
        assert_eq!(entries[1].0, Phase::SplitTree);
    }

    #[test]
    fn absorb_ledger_merges_per_phase() {
        let mut a = CommLedger::new();
        a.record(Phase::FindSplit, 10, 1, SimTime(0.1));
        let mut b = CommLedger::new();
        b.record(Phase::FindSplit, 20, 2, SimTime(0.2));
        b.record(Phase::Finish, 8, 1, SimTime::ZERO);
        a.absorb_ledger(&b);
        assert_eq!(a.phase(Phase::FindSplit).bytes, 30);
        assert_eq!(a.phase(Phase::Finish).bytes, 8);
        assert_eq!(a.total().bytes, 38);
    }

    #[test]
    fn attached_trace_mirrors_every_record() {
        use crate::trace::{comm_totals, TraceBus};
        use crate::CostModel;

        let r = StatsRecorder::new();
        let bus = TraceBus::new(2, 2, CostModel::GIGABIT_LAN, true);
        r.attach_trace(bus.clone());
        bus.set_worker(Some(0));
        r.record_named(
            Phase::BuildHistogram,
            "push_histogram",
            4096,
            2,
            SimTime::ZERO,
        );
        bus.set_worker(None);
        r.charge(Phase::BuildHistogram, SimTime(0.125));
        let mut extra = CommStats::new();
        extra.record(64, 1, SimTime(0.001));
        r.absorb_named(Phase::FindSplit, "pull_split", &extra);
        r.record_tagged(Phase::Finish, 8, 1, SimTime::ZERO);

        let events = bus.snapshot_events();
        assert_eq!(comm_totals(&events), r.ledger());
        crate::trace::validate_events(&events).unwrap();
    }

    #[test]
    fn phase_names_and_indices_are_stable() {
        for (i, phase) in Phase::ALL.into_iter().enumerate() {
            assert_eq!(phase.index(), i);
        }
        assert_eq!(Phase::BuildHistogram.name(), "build_histogram");
        assert_eq!(Phase::ALL.len(), Phase::COUNT);
    }
}
