//! Minimal wire encoding for simulated network payloads.
//!
//! Collectives and the parameter server move `f32` histograms and `u8`
//! quantized histograms. This module provides the little-endian framing used
//! to count *actual serialized bytes* (the simulated clock charges per byte
//! on the wire, so compressed payloads must really be smaller).

pub use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Serializes an `f32` slice (little endian).
pub fn encode_f32(values: &[f32]) -> Bytes {
    let mut buf = BytesMut::with_capacity(4 + values.len() * 4);
    buf.put_u32_le(values.len() as u32);
    for &v in values {
        buf.put_f32_le(v);
    }
    buf.freeze()
}

/// Deserializes an `f32` slice produced by [`encode_f32`].
///
/// # Panics
/// Panics if the buffer is malformed (the simulated network never corrupts
/// frames; a malformed frame is a programming error). Truncation anywhere in
/// the frame — including inside the 4-byte length header — fails the
/// `"truncated f32 frame"` assertion.
pub fn decode_f32(mut bytes: Bytes) -> Vec<f32> {
    assert!(bytes.remaining() >= 4, "truncated f32 frame");
    let len = bytes.get_u32_le() as usize;
    assert!(bytes.remaining() >= len * 4, "truncated f32 frame");
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        out.push(bytes.get_f32_le());
    }
    out
}

/// Which of the three density-adaptive layouts a sparse frame chose.
///
/// Selection is per message and fully determined by the payload: the encoder
/// computes the exact serialized size of all three layouts and keeps the
/// smallest, breaking ties in declaration order (`Dense` < `Bitmap` <
/// `Runs`). Two workers encoding the same slice therefore always emit the
/// same bytes — a requirement of the deterministic replay invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WireEncoding {
    /// Tag + length + every value verbatim (`5 + 4n` bytes). Wins on dense
    /// payloads where per-element presence metadata is pure overhead.
    Dense = 0,
    /// Tag + length + LSB-first presence bitmap + the nonzero values
    /// (`5 + ⌈n/8⌉ + 4·nnz` bytes). Wins on scattered sparsity.
    Bitmap = 1,
    /// Tag + length + run count + `(start, len, values…)` per run of
    /// consecutive nonzeros (`9 + 8r + 4·nnz` bytes). Wins when the
    /// nonzeros cluster, e.g. a few active features out of thousands.
    Runs = 2,
}

impl WireEncoding {
    /// Stable lowercase name used in reports and telemetry.
    pub fn name(self) -> &'static str {
        match self {
            WireEncoding::Dense => "dense",
            WireEncoding::Bitmap => "bitmap",
            WireEncoding::Runs => "runs",
        }
    }

    /// Reverse of the frame tag byte.
    ///
    /// # Panics
    /// Panics on a tag no encoder emits.
    pub fn from_tag(tag: u8) -> WireEncoding {
        match tag {
            0 => WireEncoding::Dense,
            1 => WireEncoding::Bitmap,
            2 => WireEncoding::Runs,
            other => panic!("unknown sparse frame tag {other}"),
        }
    }
}

/// Per-encoding frame/byte tallies for density-adaptive sparse exchange,
/// indexed by [`WireEncoding`] discriminant. The PS push paths fill one per
/// push; the trainer folds them into the per-round record and the run-level
/// `sparsity` report section.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SparseWireStats {
    /// Frames emitted per encoding (`[dense, bitmap, runs]`).
    pub frames: [u64; 3],
    /// Serialized bytes per encoding (`[dense, bitmap, runs]`).
    pub bytes: [u64; 3],
}

impl SparseWireStats {
    /// Tallies one frame of `bytes` serialized bytes under `encoding`.
    pub fn record(&mut self, encoding: WireEncoding, bytes: usize) {
        self.frames[encoding as usize] += 1;
        self.bytes[encoding as usize] += bytes as u64;
    }

    /// Folds another tally into this one.
    pub fn merge(&mut self, other: &SparseWireStats) {
        for i in 0..3 {
            self.frames[i] += other.frames[i];
            self.bytes[i] += other.bytes[i];
        }
    }

    /// Total serialized bytes across all encodings.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Total frames across all encodings.
    pub fn total_frames(&self) -> u64 {
        self.frames.iter().sum()
    }
}

/// An element is "zero" for sparsity purposes when it compares equal to 0.0
/// (so `-0.0` is treated as absent and decodes as `+0.0`; NaN is *not* zero
/// and ships verbatim). This is accumulation-safe: PS accumulators start at
/// `+0.0` and can never become `-0.0` under round-to-nearest addition, so
/// adding `±0.0` is always a no-op on the accumulator bits.
#[inline]
fn is_zero(v: f32) -> bool {
    v == 0.0
}

fn runs_of(values: &[f32]) -> Vec<(usize, usize)> {
    let mut runs = Vec::new();
    let mut i = 0;
    while i < values.len() {
        if is_zero(values[i]) {
            i += 1;
            continue;
        }
        let start = i;
        while i < values.len() && !is_zero(values[i]) {
            i += 1;
        }
        runs.push((start, i - start));
    }
    runs
}

/// Serialized size of [`encode_f32_sparse`]'s winning layout without
/// building the frame (used by cost planning and tests).
pub fn sparse_frame_bytes(values: &[f32]) -> usize {
    let n = values.len();
    let nnz = values.iter().filter(|&&v| !is_zero(v)).count();
    let runs = runs_of(values).len();
    let dense = 5 + 4 * n;
    let bitmap = 5 + n.div_ceil(8) + 4 * nnz;
    let run_enc = 9 + 8 * runs + 4 * nnz;
    dense.min(bitmap).min(run_enc)
}

/// Serializes an `f32` slice under the smallest of the three
/// density-adaptive layouts (see [`WireEncoding`]); returns the frame and
/// the layout it chose.
///
/// Decoding with [`decode_f32_sparse`] reproduces every nonzero value
/// bit-for-bit; zero slots come back as `+0.0` (note `-0.0` inputs decode
/// as `+0.0` — see [`WireEncoding`] for why this is accumulation-safe).
pub fn encode_f32_sparse(values: &[f32]) -> (Bytes, WireEncoding) {
    let n = values.len();
    let nnz = values.iter().filter(|&&v| !is_zero(v)).count();
    let runs = runs_of(values);
    let dense_sz = 5 + 4 * n;
    let bitmap_sz = 5 + n.div_ceil(8) + 4 * nnz;
    let runs_sz = 9 + 8 * runs.len() + 4 * nnz;
    let best = dense_sz.min(bitmap_sz).min(runs_sz);

    let encoding = if best == dense_sz {
        WireEncoding::Dense
    } else if best == bitmap_sz {
        WireEncoding::Bitmap
    } else {
        WireEncoding::Runs
    };

    let mut buf = BytesMut::with_capacity(best);
    buf.put_u8(encoding as u8);
    buf.put_u32_le(n as u32);
    match encoding {
        WireEncoding::Dense => {
            for &v in values {
                buf.put_f32_le(v);
            }
        }
        WireEncoding::Bitmap => {
            let mut bitmap = vec![0u8; n.div_ceil(8)];
            for (i, &v) in values.iter().enumerate() {
                if !is_zero(v) {
                    bitmap[i / 8] |= 1 << (i % 8);
                }
            }
            buf.put_slice(&bitmap);
            for &v in values.iter().filter(|&&v| !is_zero(v)) {
                buf.put_f32_le(v);
            }
        }
        WireEncoding::Runs => {
            buf.put_u32_le(runs.len() as u32);
            for &(start, len) in &runs {
                buf.put_u32_le(start as u32);
                buf.put_u32_le(len as u32);
                for &v in &values[start..start + len] {
                    buf.put_f32_le(v);
                }
            }
        }
    }
    debug_assert_eq!(buf.len(), best, "sparse frame size mismatch");
    (buf.freeze(), encoding)
}

/// Deserializes a frame produced by [`encode_f32_sparse`]. Returns the full
/// dense vector (zero slots filled with `+0.0`) and the layout the encoder
/// chose.
///
/// # Panics
/// Panics with `"truncated sparse frame"` on truncation anywhere, including
/// inside the 5-byte tag+length header, and on an unknown layout tag.
pub fn decode_f32_sparse(mut bytes: Bytes) -> (Vec<f32>, WireEncoding) {
    read_f32_sparse(&mut bytes)
}

/// Streaming form of [`decode_f32_sparse`]: consumes exactly one sparse
/// frame from the front of `bytes`, leaving any trailing bytes in place
/// (sparse frames are self-delimiting, so they compose into larger
/// messages — the quantized block frames concatenate several).
pub fn read_f32_sparse(bytes: &mut Bytes) -> (Vec<f32>, WireEncoding) {
    assert!(bytes.remaining() >= 5, "truncated sparse frame");
    let encoding = WireEncoding::from_tag(bytes.get_u8());
    let len = bytes.get_u32_le() as usize;
    let mut out = vec![0.0f32; len];
    match encoding {
        WireEncoding::Dense => {
            assert!(bytes.remaining() >= len * 4, "truncated sparse frame");
            for slot in out.iter_mut() {
                *slot = bytes.get_f32_le();
            }
        }
        WireEncoding::Bitmap => {
            let bm_len = len.div_ceil(8);
            assert!(bytes.remaining() >= bm_len, "truncated sparse frame");
            let mut bitmap = vec![0u8; bm_len];
            bytes.copy_to_slice(&mut bitmap);
            for (i, slot) in out.iter_mut().enumerate() {
                if bitmap[i / 8] & (1 << (i % 8)) != 0 {
                    assert!(bytes.remaining() >= 4, "truncated sparse frame");
                    *slot = bytes.get_f32_le();
                }
            }
        }
        WireEncoding::Runs => {
            assert!(bytes.remaining() >= 4, "truncated sparse frame");
            let nruns = bytes.get_u32_le() as usize;
            for _ in 0..nruns {
                assert!(bytes.remaining() >= 8, "truncated sparse frame");
                let start = bytes.get_u32_le() as usize;
                let rlen = bytes.get_u32_le() as usize;
                assert!(
                    start + rlen <= len,
                    "sparse frame run {start}+{rlen} exceeds length {len}"
                );
                assert!(bytes.remaining() >= rlen * 4, "truncated sparse frame");
                for slot in &mut out[start..start + rlen] {
                    *slot = bytes.get_f32_le();
                }
            }
        }
    }
    (out, encoding)
}

/// Serializes a quantized histogram frame: the max-abs scalar `c` followed by
/// the `u8` codes (Section 6.1's low-precision representation: the compressed
/// integers *and* `c` are sent to the PS).
pub fn encode_quantized(c: f32, codes: &[u8]) -> Bytes {
    let mut buf = BytesMut::with_capacity(8 + codes.len());
    buf.put_f32_le(c);
    buf.put_u32_le(codes.len() as u32);
    buf.put_slice(codes);
    buf.freeze()
}

/// Deserializes a frame produced by [`encode_quantized`].
///
/// # Panics
/// Panics with `"truncated quantized frame"` if the frame is truncated
/// anywhere, including inside the 8-byte scale+length header.
pub fn decode_quantized(mut bytes: Bytes) -> (f32, Vec<u8>) {
    assert!(bytes.remaining() >= 8, "truncated quantized frame");
    let c = bytes.get_f32_le();
    let len = bytes.get_u32_le() as usize;
    assert!(bytes.remaining() >= len, "truncated quantized frame");
    let mut codes = vec![0u8; len];
    bytes.copy_to_slice(&mut codes);
    (c, codes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f32_roundtrip() {
        let values = vec![1.5, -2.25, 0.0, f32::MAX, f32::MIN_POSITIVE];
        let encoded = encode_f32(&values);
        assert_eq!(encoded.len(), 4 + values.len() * 4);
        assert_eq!(decode_f32(encoded), values);
    }

    #[test]
    fn f32_empty() {
        assert_eq!(decode_f32(encode_f32(&[])), Vec::<f32>::new());
    }

    #[test]
    fn quantized_roundtrip() {
        let codes = vec![0u8, 127, 255, 3];
        let encoded = encode_quantized(3.5, &codes);
        assert_eq!(encoded.len(), 8 + codes.len());
        let (c, back) = decode_quantized(encoded);
        assert_eq!(c, 3.5);
        assert_eq!(back, codes);
    }

    #[test]
    fn quantized_is_smaller_than_f32() {
        let n = 1000;
        let f32_frame = encode_f32(&vec![1.0; n]);
        let q_frame = encode_quantized(1.0, &vec![1; n]);
        assert!(q_frame.len() * 3 < f32_frame.len());
    }

    #[test]
    #[should_panic(expected = "truncated")]
    fn truncated_frame_panics() {
        let frame = encode_f32(&[1.0, 2.0]);
        decode_f32(frame.slice(0..6));
    }

    // Satellite regression: frames cut inside the *header* must fail the
    // documented assertion, not the bytes shim's internal underflow panic.
    #[test]
    #[should_panic(expected = "truncated f32 frame")]
    fn f32_empty_frame_panics() {
        decode_f32(Bytes::new());
    }

    #[test]
    #[should_panic(expected = "truncated f32 frame")]
    fn f32_three_byte_frame_panics() {
        let frame = encode_f32(&[1.0]);
        decode_f32(frame.slice(0..3));
    }

    #[test]
    #[should_panic(expected = "truncated quantized frame")]
    fn quantized_empty_frame_panics() {
        decode_quantized(Bytes::new());
    }

    #[test]
    #[should_panic(expected = "truncated quantized frame")]
    fn quantized_seven_byte_frame_panics() {
        let frame = encode_quantized(1.0, &[1, 2, 3]);
        decode_quantized(frame.slice(0..7));
    }

    fn sparse_roundtrip(values: &[f32]) -> WireEncoding {
        let (frame, encoding) = encode_f32_sparse(values);
        assert_eq!(frame.len(), sparse_frame_bytes(values));
        let (decoded, decoded_enc) = decode_f32_sparse(frame);
        assert_eq!(decoded_enc, encoding);
        assert_eq!(decoded.len(), values.len());
        for (i, (&got, &want)) in decoded.iter().zip(values).enumerate() {
            if want == 0.0 {
                // Zero slots decode as +0.0 regardless of input sign.
                assert_eq!(got.to_bits(), 0.0f32.to_bits(), "slot {i}");
            } else {
                assert_eq!(got.to_bits(), want.to_bits(), "slot {i}");
            }
        }
        encoding
    }

    #[test]
    fn sparse_picks_dense_for_dense_payloads() {
        let values: Vec<f32> = (1..=32).map(|i| i as f32).collect();
        assert_eq!(sparse_roundtrip(&values), WireEncoding::Dense);
    }

    #[test]
    fn sparse_picks_bitmap_for_scattered_nonzeros() {
        let mut values = vec![0.0f32; 256];
        for i in (0..256).step_by(7) {
            values[i] = (i + 1) as f32;
        }
        assert_eq!(sparse_roundtrip(&values), WireEncoding::Bitmap);
    }

    #[test]
    fn sparse_picks_runs_for_clustered_nonzeros() {
        let mut values = vec![0.0f32; 4096];
        for (i, slot) in values[100..108].iter_mut().enumerate() {
            *slot = (i + 1) as f32;
        }
        assert_eq!(sparse_roundtrip(&values), WireEncoding::Runs);
    }

    #[test]
    fn sparse_empty_and_all_zero() {
        sparse_roundtrip(&[]);
        let encoding = sparse_roundtrip(&[0.0; 100]);
        assert_ne!(encoding, WireEncoding::Dense);
        let (frame, _) = encode_f32_sparse(&[0.0; 100]);
        // All-zero payload collapses to header + presence metadata.
        assert!(frame.len() < 5 + 100 * 4 / 2);
    }

    #[test]
    fn sparse_preserves_special_values() {
        // NaN and -0.0 handling: NaN is nonzero (ships verbatim), -0.0 is
        // zero (decodes as +0.0).
        let values = [f32::NAN, -0.0, 1.5, f32::INFINITY, 0.0, f32::MIN_POSITIVE];
        sparse_roundtrip(&values);
    }

    #[test]
    fn sparse_tie_break_is_deterministic() {
        // Same payload always yields byte-identical frames.
        let mut values = vec![0.0f32; 64];
        values[3] = 1.0;
        values[40] = -2.0;
        let (a, ea) = encode_f32_sparse(&values);
        let (b, eb) = encode_f32_sparse(&values);
        assert_eq!(ea, eb);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "truncated sparse frame")]
    fn sparse_empty_frame_panics() {
        decode_f32_sparse(Bytes::new());
    }

    #[test]
    #[should_panic(expected = "truncated sparse frame")]
    fn sparse_header_truncation_panics() {
        let (frame, _) = encode_f32_sparse(&[1.0, 0.0, 2.0]);
        decode_f32_sparse(frame.slice(0..3));
    }

    #[test]
    #[should_panic(expected = "truncated sparse frame")]
    fn sparse_body_truncation_panics() {
        let (frame, _) = encode_f32_sparse(&[1.0, 2.0, 3.0]);
        let cut = frame.len() - 2;
        decode_f32_sparse(frame.slice(0..cut));
    }

    #[test]
    #[should_panic(expected = "unknown sparse frame tag")]
    fn sparse_unknown_tag_panics() {
        let mut buf = BytesMut::new();
        buf.put_u8(9);
        buf.put_u32_le(0);
        decode_f32_sparse(buf.freeze());
    }
}
