//! Minimal wire encoding for simulated network payloads.
//!
//! Collectives and the parameter server move `f32` histograms and `u8`
//! quantized histograms. This module provides the little-endian framing used
//! to count *actual serialized bytes* (the simulated clock charges per byte
//! on the wire, so compressed payloads must really be smaller).

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Serializes an `f32` slice (little endian).
pub fn encode_f32(values: &[f32]) -> Bytes {
    let mut buf = BytesMut::with_capacity(4 + values.len() * 4);
    buf.put_u32_le(values.len() as u32);
    for &v in values {
        buf.put_f32_le(v);
    }
    buf.freeze()
}

/// Deserializes an `f32` slice produced by [`encode_f32`].
///
/// # Panics
/// Panics if the buffer is malformed (the simulated network never corrupts
/// frames; a malformed frame is a programming error).
pub fn decode_f32(mut bytes: Bytes) -> Vec<f32> {
    let len = bytes.get_u32_le() as usize;
    assert!(bytes.remaining() >= len * 4, "truncated f32 frame");
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        out.push(bytes.get_f32_le());
    }
    out
}

/// Serializes a quantized histogram frame: the max-abs scalar `c` followed by
/// the `u8` codes (Section 6.1's low-precision representation: the compressed
/// integers *and* `c` are sent to the PS).
pub fn encode_quantized(c: f32, codes: &[u8]) -> Bytes {
    let mut buf = BytesMut::with_capacity(8 + codes.len());
    buf.put_f32_le(c);
    buf.put_u32_le(codes.len() as u32);
    buf.put_slice(codes);
    buf.freeze()
}

/// Deserializes a frame produced by [`encode_quantized`].
pub fn decode_quantized(mut bytes: Bytes) -> (f32, Vec<u8>) {
    let c = bytes.get_f32_le();
    let len = bytes.get_u32_le() as usize;
    assert!(bytes.remaining() >= len, "truncated quantized frame");
    let mut codes = vec![0u8; len];
    bytes.copy_to_slice(&mut codes);
    (c, codes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f32_roundtrip() {
        let values = vec![1.5, -2.25, 0.0, f32::MAX, f32::MIN_POSITIVE];
        let encoded = encode_f32(&values);
        assert_eq!(encoded.len(), 4 + values.len() * 4);
        assert_eq!(decode_f32(encoded), values);
    }

    #[test]
    fn f32_empty() {
        assert_eq!(decode_f32(encode_f32(&[])), Vec::<f32>::new());
    }

    #[test]
    fn quantized_roundtrip() {
        let codes = vec![0u8, 127, 255, 3];
        let encoded = encode_quantized(3.5, &codes);
        assert_eq!(encoded.len(), 8 + codes.len());
        let (c, back) = decode_quantized(encoded);
        assert_eq!(c, 3.5);
        assert_eq!(back, codes);
    }

    #[test]
    fn quantized_is_smaller_than_f32() {
        let n = 1000;
        let f32_frame = encode_f32(&vec![1.0; n]);
        let q_frame = encode_quantized(1.0, &vec![1; n]);
        assert!(q_frame.len() * 3 < f32_frame.len());
    }

    #[test]
    #[should_panic(expected = "truncated")]
    fn truncated_frame_panics() {
        let frame = encode_f32(&[1.0, 2.0]);
        decode_f32(frame.slice(0..6));
    }
}
