//! The four model-aggregation strategies of Section 3, executed over real
//! buffers with simulated timing.
//!
//! Each operator takes one local histogram per worker, performs the actual
//! step-structured algorithm the corresponding system uses (Figure 3), and
//! returns both the aggregated data and a [`CommStats`] record whose
//! simulated time is the Table 1 closed form. The data path and the clock
//! are deliberately separate concerns: the data path is tested for exact
//! equivalence across all four strategies, the clock reproduces the paper's
//! communication analysis.

use std::ops::Range;

use crate::trace::TraceBus;
use crate::{CommStats, CostModel, Phase};

/// Optional trace hook for the `*_traced` collective variants: the bus to
/// emit step annotations on, and the phase to attribute them to.
pub type TraceHook<'a> = Option<(&'a TraceBus, Phase)>;

fn step(trace: &TraceHook<'_>, name: &'static str, bytes: u64, packages: u64) {
    if let Some((bus, phase)) = trace {
        bus.on_step(*phase, name, bytes, packages);
    }
}

/// Result of a scatter-style aggregation: each participating node owns a
/// contiguous, fully-reduced segment of the histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct Scattered {
    /// Total histogram length in elements.
    pub len: usize,
    /// One entry per owner: which node owns which element range, with the
    /// reduced data for that range.
    pub segments: Vec<Segment>,
}

/// One owned segment of a scattered reduction.
#[derive(Debug, Clone, PartialEq)]
pub struct Segment {
    /// Node (worker/server) that holds this segment.
    pub owner: usize,
    /// Element range of the full histogram this segment covers.
    pub range: Range<usize>,
    /// Reduced values for `range`.
    pub data: Vec<f32>,
}

impl Scattered {
    /// Reassembles the full reduced histogram (used by tests and by workers
    /// that need the complete result).
    pub fn assemble(&self) -> Vec<f32> {
        let mut out = vec![0.0; self.len];
        for seg in &self.segments {
            out[seg.range.clone()].copy_from_slice(&seg.data);
        }
        out
    }
}

/// Splits `len` elements into `parts` near-equal contiguous ranges.
pub fn partition_ranges(len: usize, parts: usize) -> Vec<Range<usize>> {
    assert!(parts > 0, "cannot partition into zero parts");
    let base = len / parts;
    let extra = len % parts;
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let size = base + usize::from(p < extra);
        ranges.push(start..start + size);
        start += size;
    }
    ranges
}

fn check_uniform(buffers: &[Vec<f32>]) -> usize {
    assert!(!buffers.is_empty(), "collective needs at least one worker");
    let len = buffers[0].len();
    assert!(
        buffers.iter().all(|b| b.len() == len),
        "all local histograms must have equal length"
    );
    len
}

fn elementwise_add(acc: &mut [f32], src: &[f32]) {
    for (a, s) in acc.iter_mut().zip(src) {
        *a += s;
    }
}

/// MLlib-style all-to-one reduce: every worker ships its full histogram to
/// `root`, which merges them (the `reduceByKey` path of Section 2.3).
///
/// Simulated time: `h·β·w + α + h·γ` (Table 1).
pub fn reduce_to_one(
    buffers: &[Vec<f32>],
    root: usize,
    model: &CostModel,
) -> (Vec<f32>, CommStats) {
    reduce_to_one_traced(buffers, root, model, None)
}

/// [`reduce_to_one`] with a per-transfer trace annotation for each worker's
/// send to the root.
pub fn reduce_to_one_traced(
    buffers: &[Vec<f32>],
    root: usize,
    model: &CostModel,
    trace: TraceHook<'_>,
) -> (Vec<f32>, CommStats) {
    let len = check_uniform(buffers);
    assert!(root < buffers.len(), "root {root} out of range");
    let w = buffers.len();
    let mut acc = buffers[root].clone();
    let mut stats = CommStats::new();
    for (rank, buf) in buffers.iter().enumerate() {
        if rank == root {
            continue;
        }
        elementwise_add(&mut acc, buf);
        stats.bytes += (len * 4) as u64;
        stats.packages += 1;
        step(&trace, "reduce_send", (len * 4) as u64, 1);
    }
    if w > 1 {
        stats.sim_time = model.t_reduce_to_one(len * 4, w);
    }
    (acc, stats)
}

/// XGBoost-style AllReduce over a binomial tree: `⌈log₂ w⌉` non-overlapping
/// reduce steps up the tree, then a broadcast back down (Section 2.3).
/// Every worker ends with the full reduced histogram.
///
/// Simulated time: `(h·β + α + h·γ)·⌈log₂ w⌉` (Table 1; the paper charges
/// the reduce path — the broadcast is charged separately by callers that
/// need it, which matches XGBoost computing the split at the root and
/// broadcasting only the tiny split decision).
pub fn allreduce_binomial(buffers: &[Vec<f32>], model: &CostModel) -> (Vec<f32>, CommStats) {
    allreduce_binomial_traced(buffers, model, None)
}

/// [`allreduce_binomial`] with one trace annotation per distance-doubling
/// round of the binomial tree.
pub fn allreduce_binomial_traced(
    buffers: &[Vec<f32>],
    model: &CostModel,
    trace: TraceHook<'_>,
) -> (Vec<f32>, CommStats) {
    let len = check_uniform(buffers);
    let w = buffers.len();
    let mut work: Vec<Vec<f32>> = buffers.to_vec();
    let mut stats = CommStats::new();

    // Bottom-up reduce: at distance d, rank r with r % 2d == d sends its
    // partial sum to r - d.
    let mut d = 1;
    while d < w {
        let (round_bytes, round_packages) = (stats.bytes, stats.packages);
        for r in (0..w).rev() {
            if r % (2 * d) == d {
                let (low, high) = work.split_at_mut(r);
                elementwise_add(&mut low[r - d], &high[0]);
                stats.bytes += (len * 4) as u64;
                stats.packages += 1;
            }
        }
        step(
            &trace,
            "allreduce_round",
            stats.bytes - round_bytes,
            stats.packages - round_packages,
        );
        d *= 2;
    }
    if w > 1 {
        stats.sim_time = model.t_allreduce_binomial(len * 4, w);
    }
    (work.swap_remove(0), stats)
}

/// LightGBM-style ReduceScatter via recursive halving (Section 2.3): in each
/// step a worker exchanges half of its remaining histogram with a partner
/// `group/2` away; after `log₂ w` steps each worker owns a fully-reduced
/// `1/w` slice.
///
/// For non-power-of-two worker counts, the extra workers first fold their
/// buffers into the low ranks and drop out (the MPICH treatment), and the
/// paper charges double time ("If w is not a power of two, the time taken by
/// LightGBM is doubled").
///
/// Simulated time: `(w−1)/w·h·β + (α + h·γ)·log₂ w`, ×2 off powers of two
/// (Table 1).
pub fn reduce_scatter_halving(buffers: &[Vec<f32>], model: &CostModel) -> (Scattered, CommStats) {
    reduce_scatter_halving_traced(buffers, model, None)
}

/// [`reduce_scatter_halving`] with trace annotations for the preliminary
/// non-power-of-two fold and for each recursive-halving level.
pub fn reduce_scatter_halving_traced(
    buffers: &[Vec<f32>],
    model: &CostModel,
    trace: TraceHook<'_>,
) -> (Scattered, CommStats) {
    let len = check_uniform(buffers);
    let w = buffers.len();
    let mut stats = CommStats::new();

    if w == 1 {
        return (
            Scattered {
                len,
                segments: vec![Segment {
                    owner: 0,
                    range: 0..len,
                    data: buffers[0].clone(),
                }],
            },
            stats,
        );
    }

    let pow2 = if w.is_power_of_two() {
        w
    } else {
        w.next_power_of_two() / 2
    };
    let extra = w - pow2;
    let mut work: Vec<Vec<f32>> = buffers.to_vec();

    // Preliminary fold of the ranks beyond the largest power of two.
    for e in 0..extra {
        let src = pow2 + e;
        let (low, high) = work.split_at_mut(src);
        elementwise_add(&mut low[e], &high[0]);
        stats.bytes += (len * 4) as u64;
        stats.packages += 1;
    }
    if extra > 0 {
        step(&trace, "fold_extra_ranks", stats.bytes, stats.packages);
    }
    work.truncate(pow2);

    // Recursive halving among the first pow2 ranks. Each rank tracks the
    // element range it is still responsible for.
    let mut ranges: Vec<Range<usize>> = vec![0..len; pow2];
    let mut group = pow2;
    while group > 1 {
        let half = group / 2;
        let (level_bytes, level_packages) = (stats.bytes, stats.packages);
        for base in (0..pow2).step_by(group) {
            for i in 0..half {
                let lo_rank = base + i;
                let hi_rank = base + i + half;
                let range = ranges[lo_rank].clone();
                debug_assert_eq!(range, ranges[hi_rank]);
                let mid = range.start + (range.end - range.start) / 2;
                // lo keeps [start, mid), hi keeps [mid, end); each receives
                // the partner's half and merges it.
                let (head, tail) = work.split_at_mut(hi_rank);
                let lo_buf = &mut head[lo_rank];
                let hi_buf = &mut tail[0];
                for j in range.start..mid {
                    lo_buf[j] += hi_buf[j];
                }
                for j in mid..range.end {
                    hi_buf[j] += lo_buf[j];
                }
                let moved = ((range.end - range.start) / 2).max(1) * 4;
                stats.bytes += 2 * moved as u64;
                stats.packages += 2;
                ranges[lo_rank] = range.start..mid;
                ranges[hi_rank] = mid..range.end;
            }
        }
        step(
            &trace,
            "halving_level",
            stats.bytes - level_bytes,
            stats.packages - level_packages,
        );
        group = half;
    }

    let segments = (0..pow2)
        .map(|r| Segment {
            owner: r,
            range: ranges[r].clone(),
            data: work[r][ranges[r].clone()].to_vec(),
        })
        .collect();
    stats.sim_time = model.t_reduce_scatter(len * 4, w);
    (Scattered { len, segments }, stats)
}

/// DimBoost's parameter-server batch exchange (Section 3): the histogram is
/// partitioned into `servers` contiguous shards; each worker sends shard `j`
/// to server `j` in one batch of `w−1` packages (the shard for the
/// co-located server moves locally for free). Each server ends up owning a
/// fully-reduced shard — the same postcondition as ReduceScatter, in a
/// single communication step.
///
/// Simulated time: `(w−1)/w·h·β + (w−1)·α + h·γ` (Table 1).
pub fn ps_batch_exchange(
    buffers: &[Vec<f32>],
    servers: usize,
    model: &CostModel,
) -> (Scattered, CommStats) {
    ps_batch_exchange_traced(buffers, servers, model, None)
}

/// [`ps_batch_exchange`] with one trace annotation per server's inbound
/// batch.
pub fn ps_batch_exchange_traced(
    buffers: &[Vec<f32>],
    servers: usize,
    model: &CostModel,
    trace: TraceHook<'_>,
) -> (Scattered, CommStats) {
    let len = check_uniform(buffers);
    assert!(servers > 0, "need at least one server");
    let w = buffers.len();
    let ranges = partition_ranges(len, servers);
    let mut stats = CommStats::new();

    let segments: Vec<Segment> = ranges
        .iter()
        .enumerate()
        .map(|(server, range)| {
            let mut data = vec![0.0f32; range.end - range.start];
            let (batch_bytes, batch_packages) = (stats.bytes, stats.packages);
            for (rank, buf) in buffers.iter().enumerate() {
                elementwise_add(&mut data, &buf[range.clone()]);
                // Co-located worker -> server transfers are local.
                if rank != server % w {
                    stats.bytes += ((range.end - range.start) * 4) as u64;
                    stats.packages += 1;
                }
            }
            step(
                &trace,
                "server_batch",
                stats.bytes - batch_bytes,
                stats.packages - batch_packages,
            );
            Segment {
                owner: server,
                range: range.clone(),
                data,
            }
        })
        .collect();

    if w > 1 {
        stats.sim_time = model.t_ps_exchange(len * 4, w);
    }
    (Scattered { len, segments }, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_buffers(w: usize, len: usize) -> (Vec<Vec<f32>>, Vec<f32>) {
        let buffers: Vec<Vec<f32>> = (0..w)
            .map(|r| {
                (0..len)
                    .map(|i| ((r * 31 + i * 7) % 13) as f32 - 6.0 + 0.5 * (r as f32))
                    .collect()
            })
            .collect();
        let mut expected = vec![0.0f32; len];
        for b in &buffers {
            elementwise_add(&mut expected, b);
        }
        (buffers, expected)
    }

    fn assert_close(a: &[f32], b: &[f32]) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < 1e-3, "element {i}: {x} vs {y}");
        }
    }

    #[test]
    fn all_strategies_agree() {
        for w in [1, 2, 3, 4, 5, 7, 8, 16] {
            let (buffers, expected) = make_buffers(w, 97);
            let m = CostModel::GIGABIT_LAN;

            let (r, _) = reduce_to_one(&buffers, 0, &m);
            assert_close(&r, &expected);

            let (a, _) = allreduce_binomial(&buffers, &m);
            assert_close(&a, &expected);

            let (s, _) = reduce_scatter_halving(&buffers, &m);
            assert_close(&s.assemble(), &expected);

            let (p, _) = ps_batch_exchange(&buffers, w, &m);
            assert_close(&p.assemble(), &expected);
        }
    }

    #[test]
    fn scatter_segments_form_partition() {
        for w in [2, 3, 5, 8] {
            let (buffers, _) = make_buffers(w, 64);
            let (s, _) = reduce_scatter_halving(&buffers, &CostModel::FREE);
            let mut covered = [false; 64];
            for seg in &s.segments {
                assert_eq!(seg.data.len(), seg.range.len());
                for i in seg.range.clone() {
                    assert!(!covered[i], "element {i} covered twice");
                    covered[i] = true;
                }
            }
            assert!(covered.iter().all(|&c| c), "w={w}: incomplete cover");
        }
    }

    #[test]
    fn ps_exchange_with_fewer_servers_than_workers() {
        let (buffers, expected) = make_buffers(8, 50);
        let (p, _) = ps_batch_exchange(&buffers, 3, &CostModel::FREE);
        assert_eq!(p.segments.len(), 3);
        assert_close(&p.assemble(), &expected);
    }

    #[test]
    fn sim_times_match_table1() {
        let (buffers, _) = make_buffers(8, 1 << 20);
        let m = CostModel::GIGABIT_LAN;
        let h = (1 << 20) * 4;

        let (_, s1) = reduce_to_one(&buffers, 0, &m);
        assert_eq!(s1.sim_time, m.t_reduce_to_one(h, 8));

        let (_, s2) = allreduce_binomial(&buffers, &m);
        assert_eq!(s2.sim_time, m.t_allreduce_binomial(h, 8));

        let (_, s3) = reduce_scatter_halving(&buffers, &m);
        assert_eq!(s3.sim_time, m.t_reduce_scatter(h, 8));

        let (_, s4) = ps_batch_exchange(&buffers, 8, &m);
        assert_eq!(s4.sim_time, m.t_ps_exchange(h, 8));
    }

    #[test]
    fn single_worker_costs_nothing() {
        let buffers = [vec![1.0f32; 16]];
        let m = CostModel::GIGABIT_LAN;
        let (_, s) = reduce_to_one(&buffers, 0, &m);
        assert_eq!(s, CommStats::default());
        let (_, s) = allreduce_binomial(&buffers, &m);
        assert_eq!(s, CommStats::default());
        let (_, s) = reduce_scatter_halving(&buffers, &m);
        assert_eq!(s, CommStats::default());
        let (_, s) = ps_batch_exchange(&buffers, 1, &m);
        assert_eq!(s, CommStats::default());
    }

    #[test]
    fn byte_accounting_reduce_to_one() {
        let (buffers, _) = make_buffers(5, 10);
        let (_, s) = reduce_to_one(&buffers, 2, &CostModel::FREE);
        // 4 senders, 10 f32 each.
        assert_eq!(s.bytes, 4 * 40);
        assert_eq!(s.packages, 4);
    }

    #[test]
    fn byte_accounting_ps_moves_less_than_reduce() {
        let (buffers, _) = make_buffers(8, 800);
        let (_, ps) = ps_batch_exchange(&buffers, 8, &CostModel::FREE);
        let (_, red) = reduce_to_one(&buffers, 0, &CostModel::FREE);
        // PS moves (w-1)/w of what all-to-one moves.
        assert_eq!(ps.bytes, red.bytes);
        // Same total bytes, but spread across w inbound links instead of 1;
        // the time advantage comes from parallel links, not fewer bytes.
        assert!(ps.packages > red.packages);
    }

    #[test]
    fn partition_ranges_covers_exactly() {
        let ranges = partition_ranges(10, 3);
        assert_eq!(ranges, vec![0..4, 4..7, 7..10]);
        let ranges = partition_ranges(2, 5);
        assert_eq!(ranges.iter().map(|r| r.len()).sum::<usize>(), 2);
        assert_eq!(ranges.len(), 5);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn rejects_ragged_buffers() {
        let buffers = vec![vec![1.0; 3], vec![1.0; 4]];
        reduce_to_one(&buffers, 0, &CostModel::FREE);
    }

    #[test]
    fn traced_variants_emit_steps_and_match_untraced() {
        use crate::trace::{EventKind, TraceBus};

        let (buffers, _) = make_buffers(6, 64);
        let m = CostModel::GIGABIT_LAN;
        let bus = TraceBus::new(6, 3, m, true);

        let (plain, plain_stats) = allreduce_binomial(&buffers, &m);
        let (traced, traced_stats) =
            allreduce_binomial_traced(&buffers, &m, Some((&bus, Phase::BuildHistogram)));
        assert_eq!(plain, traced);
        assert_eq!(plain_stats, traced_stats);
        // ⌈log₂ 6⌉ = 3 rounds.
        let rounds: Vec<_> = bus
            .snapshot_events()
            .iter()
            .filter(|e| e.kind == EventKind::Step && e.name == "allreduce_round")
            .map(|e| (e.bytes, e.packages))
            .collect();
        assert_eq!(rounds.len(), 3);
        assert_eq!(
            rounds.iter().map(|&(b, _)| b).sum::<u64>(),
            traced_stats.bytes
        );

        let (s_plain, s_stats) = reduce_scatter_halving(&buffers, &m);
        let (s_traced, s_traced_stats) =
            reduce_scatter_halving_traced(&buffers, &m, Some((&bus, Phase::BuildHistogram)));
        assert_eq!(s_plain, s_traced);
        assert_eq!(s_stats, s_traced_stats);

        let (p_plain, p_stats) = ps_batch_exchange(&buffers, 3, &m);
        let (p_traced, p_traced_stats) =
            ps_batch_exchange_traced(&buffers, 3, &m, Some((&bus, Phase::BuildHistogram)));
        assert_eq!(p_plain, p_traced);
        assert_eq!(p_stats, p_traced_stats);
        let batches = bus
            .snapshot_events()
            .iter()
            .filter(|e| e.name == "server_batch")
            .count();
        assert_eq!(batches, 3);

        let (r_plain, r_stats) = reduce_to_one(&buffers, 0, &m);
        let (r_traced, r_traced_stats) =
            reduce_to_one_traced(&buffers, 0, &m, Some((&bus, Phase::BuildHistogram)));
        assert_eq!(r_plain, r_traced);
        assert_eq!(r_stats, r_traced_stats);

        // Step annotations carry no simulated time and never pollute the
        // ledger-relevant fold.
        let events = bus.snapshot_events();
        crate::trace::validate_events(&events).unwrap();
        assert!(events
            .iter()
            .filter(|e| e.kind == EventKind::Step)
            .all(|e| e.sim_dur == crate::SimTime::ZERO));
        assert!(crate::trace::comm_totals(&events).total().is_empty());
    }

    #[test]
    fn non_power_of_two_reduce_scatter_correct() {
        // w=6: 2 extra ranks fold into ranks 0..2, then 4-way halving.
        let (buffers, expected) = make_buffers(6, 32);
        let (s, stats) = reduce_scatter_halving(&buffers, &CostModel::GIGABIT_LAN);
        assert_close(&s.assemble(), &expected);
        assert_eq!(s.segments.len(), 4);
        // Charged the doubled non-power-of-two time.
        assert_eq!(
            stats.sim_time,
            CostModel::GIGABIT_LAN.t_reduce_scatter(32 * 4, 6)
        );
    }
}
