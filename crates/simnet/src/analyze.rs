//! Deterministic trace analytics: the profiler behind the `trace_analyze`
//! binary and the CLI `analyze` subcommand.
//!
//! The trace ([`crate::trace`]) records *what happened*; this module
//! explains *why the run took as long as it did*. [`analyze_trace`] is a
//! pure pass over a finished [`Trace`] computing:
//!
//! * **Critical-path decomposition.** The clock model is barrier-
//!   synchronous: simulated time advances only through Collective charges
//!   and synchronous Requests, in sequence order. The chain of those
//!   clock-advancing events *is* the dependency chain that bounds the run —
//!   every other event (service, compute, fault) happens inside one of its
//!   segments. The profiler replays the chain and asserts the structural
//!   identity **`critical_path_total == final sim time` bit-exactly**: the
//!   segments must tile `[0, T]` with every boundary equal on exact f64
//!   bits, because each segment's begin was produced by the same
//!   `now += dur` fold the profiler re-runs. Segments are attributed to
//!   `(track, phase)` and merged into per-round entries.
//! * **Utilization and wait decomposition.** Per-track busy/idle against
//!   the clock span (`busy + idle == span` by construction, with
//!   `busy <= span` enforced as a conservation check), plus the PS split of
//!   server time into queue wait vs service. Service events are replayed
//!   against per-server cursors exactly as the bus computed them
//!   (`start = cursor.max(arrival)`), so a corrupted service duration is
//!   caught at the next event on that server.
//! * **Fault stretch attribution.** Fault events carry the extra simulated
//!   time each injected fault cost; their fold is the stretch over the
//!   fault-free schedule, reported per fault kind with
//!   `faultfree_estimate_secs = total − stretch`.
//! * **Membership (elasticity) stretch attribution.** Mirrors the fault
//!   stretch for the elastic-membership lane: joins, leaves, stripe
//!   handoffs, elastic dilation, and speculative backups each carry the
//!   simulated time they added, folded per event name next to the fault
//!   stretch.
//! * **Folded-stacks export.** `track;phase;name value` lines (value =
//!   integer nanoseconds of simulated time) in the format flamegraph
//!   renderers consume.
//!
//! Everything lands in a canonical `{"kind":"trace_profile"}` JSON document
//! ([`TraceProfile::canonical_json`]): pure simulated clock, f64s printed
//! with shortest-round-trip formatting, byte-identical across reruns —
//! `report_diff` gates it in CI exactly like run and serving reports.
//!
//! # Float-fold caveat (why there are two totals)
//!
//! `total_secs` is the sequence-order fold of segment durations — the exact
//! computation that produced the clock, hence the bit-exact identity.
//! `attributed_secs` re-folds the same durations grouped per
//! `(track, phase)` bucket; f64 addition is not associative, so the grouped
//! fold may differ from the sequence fold in the last ulps. The profiler
//! checks the two agree to a documented 1e-9 relative tolerance (and that
//! the integer event/byte attributions agree *exactly*) — the same reason
//! [`crate::CommLedger`] defines its total as the fold of its per-phase
//! buckets rather than keeping two float totals.

use std::collections::BTreeMap;

use crate::trace::{EventKind, Trace, Track};
use crate::Phase;

/// Why a trace failed analysis. Every variant is a structural violation of
/// the clock model — an analyzer gate, not a parse problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalyzeError {
    /// The event stream failed [`crate::trace::validate_events`].
    Invalid(String),
    /// The critical-path identity is broken: the clock-advancing chain does
    /// not tile `[0, final sim time]` bit-exactly.
    CriticalPath(String),
    /// A conservation identity is broken: per-track `busy + idle == span`,
    /// the service-replay continuity, or the attribution sums.
    Conservation(String),
}

impl std::fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnalyzeError::Invalid(m) => write!(f, "invalid trace: {m}"),
            AnalyzeError::CriticalPath(m) => write!(f, "critical-path identity broken: {m}"),
            AnalyzeError::Conservation(m) => write!(f, "conservation broken: {m}"),
        }
    }
}

impl std::error::Error for AnalyzeError {}

/// One merged run of consecutive critical-path segments sharing
/// `(round, phase)`.
#[derive(Debug, Clone, PartialEq)]
pub struct PathEntry {
    /// Boosting round the entry belongs to (0 = pre-round setup; the first
    /// `new_tree` segment opens round 1).
    pub round: u64,
    /// Track code (`net`, `w0`, …) of the member contributing the most
    /// simulated time (first on ties).
    pub track: String,
    /// Phase every member shares.
    pub phase: Phase,
    /// Begin of the first member on the simulated clock.
    pub begin_secs: f64,
    /// Sequence-order fold of the members' durations.
    pub secs: f64,
    /// Member segment count.
    pub events: u64,
    /// Member payload bytes.
    pub bytes: u64,
}

/// Total simulated time attributed to one `(track, phase)` pair across the
/// whole critical path.
#[derive(Debug, Clone, PartialEq)]
pub struct Attribution {
    /// Track code (`net`, `w0`, …).
    pub track: String,
    /// Phase.
    pub phase: Phase,
    /// Sequence-order fold of this bucket's segment durations.
    pub secs: f64,
    /// Segments in the bucket.
    pub events: u64,
    /// Payload bytes in the bucket.
    pub bytes: u64,
}

/// The critical path: the chain of clock-advancing events and where its
/// time went.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPath {
    /// Sequence-order fold of every segment duration. Bit-exactly equal to
    /// the final simulated time (checked by [`analyze_trace`]).
    pub total_secs: f64,
    /// Fold of the attribution buckets in `(track, phase)` order — agrees
    /// with `total_secs` up to float regrouping (see module docs).
    pub attributed_secs: f64,
    /// Clock-advancing segments on the path.
    pub segments: u64,
    /// Consecutive segments merged per `(round, phase)`.
    pub entries: Vec<PathEntry>,
    /// Per-`(track, phase)` totals, sorted by track code then phase order.
    pub attribution: Vec<Attribution>,
}

/// One boosting round's share of the critical path.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundProfile {
    /// Round index (0 = pre-round setup).
    pub round: u64,
    /// First segment begin.
    pub begin_secs: f64,
    /// Last segment end.
    pub end_secs: f64,
    /// Sequence-order fold of the round's segment durations.
    pub secs: f64,
    /// Segments in the round.
    pub segments: u64,
}

/// Busy/idle/blocked decomposition of one track against the clock span.
#[derive(Debug, Clone, PartialEq)]
pub struct TrackUtilization {
    /// Track code (`net`, `w0`, `s1`, `fault`).
    pub track: String,
    /// Events on the track.
    pub events: u64,
    /// Fold of the track's simulated durations.
    pub busy_secs: f64,
    /// `span − busy` (non-negative by the conservation check).
    pub idle_secs: f64,
    /// Time the track's work sat queued (servers: the fold of service
    /// queue waits; zero elsewhere).
    pub blocked_secs: f64,
    /// Payload bytes on the track.
    pub bytes: u64,
}

/// The parameter-server queue-wait vs service split.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PsProfile {
    /// Derived service events across all servers.
    pub service_events: u64,
    /// Fold of service durations (γ-model merge time).
    pub service_secs: f64,
    /// Fold of queue waits (`start − arrival`).
    pub queue_wait_secs: f64,
    /// Deepest per-server backlog observed.
    pub max_queue_depth: u64,
}

/// Fault-stretch attribution for one fault kind.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultKind {
    /// Fault event name (`retry_backoff`, `straggler`, …).
    pub name: String,
    /// Events of this kind.
    pub events: u64,
    /// Fold of their durations.
    pub secs: f64,
}

/// Stretch the injected faults added over the fault-free schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultStretch {
    /// Fault events recorded.
    pub events: u64,
    /// Fold of every fault duration: the schedule stretch.
    pub stretch_secs: f64,
    /// `total − stretch`: what the run would have cost fault-free.
    pub faultfree_estimate_secs: f64,
    /// Per-kind breakdown, sorted by name.
    pub by_name: Vec<FaultKind>,
}

/// Stretch that elastic membership (joins, leaves, heterogeneous speeds,
/// speculative backups) added over the fixed-membership schedule. Mirrors
/// [`FaultStretch`] on the membership lane; the per-kind rows reuse
/// [`FaultKind`].
#[derive(Debug, Clone, PartialEq)]
pub struct MembershipStretch {
    /// Membership events recorded.
    pub events: u64,
    /// Fold of every membership duration: the elasticity stretch.
    pub stretch_secs: f64,
    /// `total − stretch`: what the run would have cost with fixed
    /// membership and uniform hardware.
    pub fixed_estimate_secs: f64,
    /// Per-kind breakdown (`join`, `stripe_handoff`, `elastic_dilation`,
    /// `backup_win`, …), sorted by name.
    pub by_name: Vec<FaultKind>,
}

/// The full profile of one training trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceProfile {
    /// Worker count.
    pub workers: usize,
    /// Server count.
    pub servers: usize,
    /// Events in the trace.
    pub events: u64,
    /// Final simulated time: the sequence-order fold of every
    /// clock-advancing duration (== `critical_path.total_secs`).
    pub sim_end_secs: f64,
    /// The critical path and its attribution.
    pub critical_path: CriticalPath,
    /// Per-round share of the path.
    pub rounds: Vec<RoundProfile>,
    /// Per-track busy/idle/blocked decomposition.
    pub utilization: Vec<TrackUtilization>,
    /// PS queue-wait vs service split.
    pub ps: PsProfile,
    /// Fault stretch, when the trace has a fault lane.
    pub faults: Option<FaultStretch>,
    /// Elasticity stretch, when the trace has a membership lane.
    pub membership: Option<MembershipStretch>,
    /// Folded flamegraph stacks: `track;phase;name` → integer nanoseconds.
    pub stacks: Vec<(String, u64)>,
}

/// Relative tolerance for the regrouped attribution fold (see module docs).
const REGROUP_TOL: f64 = 1e-9;

/// Analyzes a finished trace. Pure and deterministic: equal traces produce
/// equal profiles, and [`TraceProfile::canonical_json`] is byte-identical
/// across reruns of the same configuration.
///
/// # Errors
/// [`AnalyzeError::Invalid`] when the stream fails structural validation,
/// [`AnalyzeError::CriticalPath`] when the clock-advancing chain does not
/// tile `[0, T]` bit-exactly, and [`AnalyzeError::Conservation`] when a
/// track's busy time exceeds the clock span, the service replay diverges,
/// or the attribution does not sum back to the total.
pub fn analyze_trace(trace: &Trace) -> Result<TraceProfile, AnalyzeError> {
    trace.validate().map_err(AnalyzeError::Invalid)?;

    // --- Sequence-order replay state -----------------------------------
    let mut clock = 0.0f64; // replicates BusState::now
    let mut last_arrival = 0.0f64; // clock when the last request was issued
    let mut cursors = vec![0.0f64; trace.servers]; // replicates server_busy
    let mut pending = vec![0u64; trace.servers]; // replicates server_pending

    let mut segments = 0u64;
    let mut round = 0u64;
    let mut in_new_tree = false;
    let mut entries: Vec<PathEntry> = Vec::new();
    let mut entry_best: (f64, String) = (f64::NEG_INFINITY, String::new());
    let mut rounds: Vec<RoundProfile> = Vec::new();
    let mut attribution: BTreeMap<(String, usize), (f64, u64, u64)> = BTreeMap::new();
    let mut tracks: BTreeMap<u64, (String, u64, f64, f64, u64)> = BTreeMap::new();
    let mut ps = PsProfile::default();
    let mut fault_events = 0u64;
    let mut fault_stretch = 0.0f64;
    let mut fault_kinds: BTreeMap<String, (u64, f64)> = BTreeMap::new();
    let mut membership_events = 0u64;
    let mut membership_stretch = 0.0f64;
    let mut membership_kinds: BTreeMap<String, (u64, f64)> = BTreeMap::new();
    let mut stacks: BTreeMap<String, u64> = BTreeMap::new();

    for e in &trace.events {
        let dur = e.sim_dur.0;
        let code = e.track.code();

        // Per-track busy/events/bytes (idle is derived at the end).
        {
            let entry = tracks
                .entry(e.track.tid())
                .or_insert_with(|| (code.clone(), 0, 0.0, 0.0, 0));
            entry.1 += 1;
            entry.2 += dur;
            entry.4 += e.bytes;
        }

        // Folded stacks: simulated time by (track, phase, name).
        if dur > 0.0 {
            let ns = (dur * 1e9).round() as u64;
            *stacks
                .entry(format!("{};{};{}", code, e.phase.name(), e.name))
                .or_insert(0) += ns;
        }

        match e.kind {
            EventKind::Collective | EventKind::Request => {
                // A clock-advancing segment must begin exactly where the
                // replayed clock stands — the tiling half of the identity.
                if e.begin.0.to_bits() != clock.to_bits() {
                    return Err(AnalyzeError::CriticalPath(format!(
                        "segment seq {} ({}/{}) begins at {} but the clock stands at {} — \
                         the critical path does not tile the run",
                        e.seq,
                        code,
                        e.phase.name(),
                        e.begin.0,
                        clock
                    )));
                }
                segments += 1;
                if e.phase == Phase::NewTree && !in_new_tree {
                    round += 1;
                }
                in_new_tree = e.phase == Phase::NewTree;

                // Merge into the open (round, phase) entry, or open one.
                let same = entries
                    .last()
                    .is_some_and(|p| p.round == round && p.phase == e.phase);
                if same {
                    let p = entries.last_mut().expect("just checked");
                    p.secs += dur;
                    p.events += 1;
                    p.bytes += e.bytes;
                } else {
                    entries.push(PathEntry {
                        round,
                        track: code.clone(),
                        phase: e.phase,
                        begin_secs: e.begin.0,
                        secs: dur,
                        events: 1,
                        bytes: e.bytes,
                    });
                    entry_best = (f64::NEG_INFINITY, String::new());
                }
                if dur > entry_best.0 {
                    entry_best = (dur, code.clone());
                    entries.last_mut().expect("pushed above").track = entry_best.1.clone();
                }

                // Per-round totals.
                let same_round = rounds.last().is_some_and(|r| r.round == round);
                if same_round {
                    let r = rounds.last_mut().expect("just checked");
                    r.secs += dur;
                    r.segments += 1;
                    r.end_secs = e.begin.0 + dur;
                } else {
                    rounds.push(RoundProfile {
                        round,
                        begin_secs: e.begin.0,
                        end_secs: e.begin.0 + dur,
                        secs: dur,
                        segments: 1,
                    });
                }

                // Per-(track, phase) attribution bucket.
                let bucket = attribution
                    .entry((code.clone(), e.phase.index()))
                    .or_insert((0.0, 0, 0));
                bucket.0 += dur;
                bucket.1 += 1;
                bucket.2 += e.bytes;

                if e.kind == EventKind::Request {
                    last_arrival = clock;
                }
                clock += dur; // replicates `st.now += time.0`
                if e.kind == EventKind::Collective {
                    // The barrier drains every server queue.
                    for s in 0..cursors.len() {
                        cursors[s] = cursors[s].max(clock);
                        pending[s] = 0;
                    }
                }
            }
            EventKind::Service => {
                let Track::Server(s) = e.track else {
                    return Err(AnalyzeError::Invalid(format!(
                        "service event seq {} off a server track",
                        e.seq
                    )));
                };
                let s = s as usize;
                if s >= cursors.len() {
                    return Err(AnalyzeError::Invalid(format!(
                        "service event seq {} on server {s} but the trace declares {}",
                        e.seq,
                        cursors.len()
                    )));
                }
                // Replay the bus arithmetic exactly: start = busy.max(arrival).
                let expected = cursors[s].max(last_arrival);
                if e.begin.0.to_bits() != expected.to_bits() {
                    return Err(AnalyzeError::Conservation(format!(
                        "service seq {} on s{s} begins at {} but the replayed cursor \
                         expects {} — the queue-wait/service split does not conserve",
                        e.seq, e.begin.0, expected
                    )));
                }
                let wait = e.begin.0 - last_arrival;
                if e.begin.0 > last_arrival {
                    pending[s] += 1;
                } else {
                    pending[s] = 0;
                }
                ps.max_queue_depth = ps.max_queue_depth.max(pending[s]);
                ps.service_events += 1;
                ps.service_secs += dur;
                ps.queue_wait_secs += wait;
                cursors[s] = e.begin.0 + dur;
                let entry = tracks.get_mut(&e.track.tid()).expect("inserted above");
                entry.3 += wait;
            }
            EventKind::Fault => {
                fault_events += 1;
                fault_stretch += dur;
                let kind = fault_kinds.entry(e.name.to_string()).or_insert((0, 0.0));
                kind.0 += 1;
                kind.1 += dur;
            }
            EventKind::Membership => {
                membership_events += 1;
                membership_stretch += dur;
                let kind = membership_kinds
                    .entry(e.name.to_string())
                    .or_insert((0, 0.0));
                kind.0 += 1;
                kind.1 += dur;
            }
            EventKind::Compute | EventKind::Step => {}
        }
    }

    // --- Identity checks ------------------------------------------------
    // Tiling verified every segment; the fold half is structural given it,
    // but assert it anyway so the gate is self-contained.
    if let Some(last) = trace
        .events
        .iter()
        .rev()
        .find(|e| e.kind.counts_toward_ledger())
    {
        if clock.to_bits() != last.end().0.to_bits() {
            return Err(AnalyzeError::CriticalPath(format!(
                "critical-path total {} != final sim time {}",
                clock,
                last.end().0
            )));
        }
    }
    let span = clock;

    // Attribution rows, sorted by track code then phase order, and the
    // regrouped fold checked against the sequence fold.
    let attribution: Vec<Attribution> = attribution
        .into_iter()
        .map(|((track, phase), (secs, events, bytes))| Attribution {
            track,
            phase: Phase::ALL[phase],
            secs,
            events,
            bytes,
        })
        .collect();
    let attributed_secs = attribution.iter().map(|a| a.secs).sum::<f64>();
    let attributed_events = attribution.iter().map(|a| a.events).sum::<u64>();
    if attributed_events != segments {
        return Err(AnalyzeError::Conservation(format!(
            "attribution covers {attributed_events} segments but the path has {segments}"
        )));
    }
    if (attributed_secs - span).abs() > REGROUP_TOL * span.max(1.0) {
        return Err(AnalyzeError::Conservation(format!(
            "attribution sums to {attributed_secs} but the critical path totals {span}"
        )));
    }

    // Utilization in stable track order; busy must fit inside the span.
    let mut utilization = Vec::with_capacity(tracks.len());
    for (_, (track, events, busy, blocked, bytes)) in tracks {
        if busy > span {
            return Err(AnalyzeError::Conservation(format!(
                "track {track}: busy {busy} exceeds the clock span {span} \
                 (busy + idle == span conservation broken)"
            )));
        }
        utilization.push(TrackUtilization {
            track,
            events,
            busy_secs: busy,
            idle_secs: span - busy,
            blocked_secs: blocked,
            bytes,
        });
    }

    let faults = (fault_events > 0).then(|| FaultStretch {
        events: fault_events,
        stretch_secs: fault_stretch,
        faultfree_estimate_secs: span - fault_stretch,
        by_name: fault_kinds
            .into_iter()
            .map(|(name, (events, secs))| FaultKind { name, events, secs })
            .collect(),
    });

    let membership = (membership_events > 0).then(|| MembershipStretch {
        events: membership_events,
        stretch_secs: membership_stretch,
        fixed_estimate_secs: span - membership_stretch,
        by_name: membership_kinds
            .into_iter()
            .map(|(name, (events, secs))| FaultKind { name, events, secs })
            .collect(),
    });

    Ok(TraceProfile {
        workers: trace.workers,
        servers: trace.servers,
        events: trace.events.len() as u64,
        sim_end_secs: span,
        critical_path: CriticalPath {
            total_secs: clock,
            attributed_secs,
            segments,
            entries,
            attribution,
        },
        rounds,
        utilization,
        ps,
        faults,
        membership,
        stacks: stacks.into_iter().collect(),
    })
}

/// Shortest-round-trip JSON number (non-finite → `null`), matching every
/// other canonical artifact in the workspace.
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

impl TraceProfile {
    /// The canonical `{"kind":"trace_profile","source":"train"}` JSON
    /// document: pure simulated clock, byte-identical across reruns of the
    /// same configuration, gateable by `report_diff`.
    pub fn canonical_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n");
        out.push_str("  \"kind\": \"trace_profile\",\n");
        out.push_str("  \"source\": \"train\",\n");
        out.push_str(&format!("  \"workers\": {},\n", self.workers));
        out.push_str(&format!("  \"servers\": {},\n", self.servers));
        out.push_str(&format!("  \"events\": {},\n", self.events));
        out.push_str(&format!(
            "  \"sim_end_secs\": {},\n",
            fmt_f64(self.sim_end_secs)
        ));
        out.push_str("  \"critical_path\": {\n");
        out.push_str(&format!(
            "    \"total_secs\": {},\n",
            fmt_f64(self.critical_path.total_secs)
        ));
        out.push_str(&format!(
            "    \"attributed_secs\": {},\n",
            fmt_f64(self.critical_path.attributed_secs)
        ));
        out.push_str(&format!(
            "    \"segments\": {},\n",
            self.critical_path.segments
        ));
        out.push_str("    \"attribution\": [");
        for (i, a) in self.critical_path.attribution.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!(
                "      {{\"track\": \"{}\", \"phase\": \"{}\", \"secs\": {}, \
                 \"events\": {}, \"bytes\": {}}}",
                a.track,
                a.phase.name(),
                fmt_f64(a.secs),
                a.events,
                a.bytes
            ));
        }
        out.push_str("\n    ],\n    \"entries\": [");
        for (i, p) in self.critical_path.entries.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!(
                "      {{\"round\": {}, \"track\": \"{}\", \"phase\": \"{}\", \
                 \"begin_secs\": {}, \"secs\": {}, \"events\": {}, \"bytes\": {}}}",
                p.round,
                p.track,
                p.phase.name(),
                fmt_f64(p.begin_secs),
                fmt_f64(p.secs),
                p.events,
                p.bytes
            ));
        }
        out.push_str("\n    ]\n  },\n  \"rounds\": [");
        for (i, r) in self.rounds.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!(
                "    {{\"round\": {}, \"begin_secs\": {}, \"end_secs\": {}, \
                 \"secs\": {}, \"segments\": {}}}",
                r.round,
                fmt_f64(r.begin_secs),
                fmt_f64(r.end_secs),
                fmt_f64(r.secs),
                r.segments
            ));
        }
        out.push_str("\n  ],\n  \"utilization\": [");
        for (i, u) in self.utilization.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!(
                "    {{\"track\": \"{}\", \"events\": {}, \"busy_secs\": {}, \
                 \"idle_secs\": {}, \"blocked_secs\": {}, \"bytes\": {}}}",
                u.track,
                u.events,
                fmt_f64(u.busy_secs),
                fmt_f64(u.idle_secs),
                fmt_f64(u.blocked_secs),
                u.bytes
            ));
        }
        out.push_str("\n  ],\n  \"ps\": {");
        out.push_str(&format!(
            "\"service_events\": {}, \"service_secs\": {}, \"queue_wait_secs\": {}, \
             \"max_queue_depth\": {}}}",
            self.ps.service_events,
            fmt_f64(self.ps.service_secs),
            fmt_f64(self.ps.queue_wait_secs),
            self.ps.max_queue_depth
        ));
        if let Some(f) = &self.faults {
            out.push_str(",\n  \"faults\": {\n");
            out.push_str(&format!("    \"events\": {},\n", f.events));
            out.push_str(&format!(
                "    \"stretch_secs\": {},\n",
                fmt_f64(f.stretch_secs)
            ));
            out.push_str(&format!(
                "    \"faultfree_estimate_secs\": {},\n",
                fmt_f64(f.faultfree_estimate_secs)
            ));
            out.push_str("    \"by_name\": [");
            for (i, k) in f.by_name.iter().enumerate() {
                out.push_str(if i == 0 { "\n" } else { ",\n" });
                out.push_str(&format!(
                    "      {{\"name\": \"{}\", \"events\": {}, \"secs\": {}}}",
                    k.name,
                    k.events,
                    fmt_f64(k.secs)
                ));
            }
            out.push_str("\n    ]\n  }");
        }
        if let Some(m) = &self.membership {
            out.push_str(",\n  \"membership\": {\n");
            out.push_str(&format!("    \"events\": {},\n", m.events));
            out.push_str(&format!(
                "    \"stretch_secs\": {},\n",
                fmt_f64(m.stretch_secs)
            ));
            out.push_str(&format!(
                "    \"fixed_estimate_secs\": {},\n",
                fmt_f64(m.fixed_estimate_secs)
            ));
            out.push_str("    \"by_name\": [");
            for (i, k) in m.by_name.iter().enumerate() {
                out.push_str(if i == 0 { "\n" } else { ",\n" });
                out.push_str(&format!(
                    "      {{\"name\": \"{}\", \"events\": {}, \"secs\": {}}}",
                    k.name,
                    k.events,
                    fmt_f64(k.secs)
                ));
            }
            out.push_str("\n    ]\n  }");
        }
        out.push_str("\n}\n");
        out
    }

    /// Folded flamegraph stacks: one `track;phase;name value` line per
    /// stack, value in integer simulated nanoseconds, sorted by stack —
    /// pipe straight into `flamegraph.pl` or load in speedscope.
    pub fn folded_stacks(&self) -> String {
        let mut out = String::with_capacity(self.stacks.len() * 48);
        for (stack, ns) in &self.stacks {
            out.push_str(&format!("{stack} {ns}\n"));
        }
        out
    }

    /// Human-readable summary: the headline identity, per-round totals, and
    /// the `top` largest attribution buckets.
    pub fn summary(&self, top: usize) -> String {
        let mut out = format!(
            "trace profile: {} events, {} workers + {} servers, sim clock ends at {:.6}s\n\
             critical path: {} segments, total {:.6}s (== final sim time, bit-exact)\n",
            self.events,
            self.workers,
            self.servers,
            self.sim_end_secs,
            self.critical_path.segments,
            self.critical_path.total_secs,
        );
        if self.ps.service_events > 0 {
            out.push_str(&format!(
                "ps: {} service events, service {:.6}s vs queue wait {:.6}s, max depth {}\n",
                self.ps.service_events,
                self.ps.service_secs,
                self.ps.queue_wait_secs,
                self.ps.max_queue_depth
            ));
        }
        if let Some(f) = &self.faults {
            out.push_str(&format!(
                "faults: {} events stretched the schedule by {:.6}s (fault-free estimate {:.6}s)\n",
                f.events, f.stretch_secs, f.faultfree_estimate_secs
            ));
        }
        if let Some(m) = &self.membership {
            out.push_str(&format!(
                "membership: {} events stretched the schedule by {:.6}s \
                 (fixed-membership estimate {:.6}s)\n",
                m.events, m.stretch_secs, m.fixed_estimate_secs
            ));
        }
        out.push_str(&format!(
            "top {} critical-path contributors by (track, phase):\n",
            top.min(self.critical_path.attribution.len())
        ));
        out.push_str(&format!(
            "{:<8} {:<16} {:>12} {:>8} {:>12} {:>7}\n",
            "track", "phase", "secs", "events", "bytes", "share"
        ));
        let mut ranked: Vec<&Attribution> = self.critical_path.attribution.iter().collect();
        ranked.sort_by(|a, b| {
            b.secs
                .total_cmp(&a.secs)
                .then_with(|| a.track.cmp(&b.track))
                .then_with(|| a.phase.index().cmp(&b.phase.index()))
        });
        for a in ranked.into_iter().take(top) {
            let share = if self.sim_end_secs > 0.0 {
                a.secs / self.sim_end_secs * 100.0
            } else {
                0.0
            };
            out.push_str(&format!(
                "{:<8} {:<16} {:>12.6} {:>8} {:>12} {:>6.1}%\n",
                a.track,
                a.phase.name(),
                a.secs,
                a.events,
                a.bytes,
                share
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceBus;
    use crate::{CostModel, SimTime};

    /// A small but representative bus: setup, two rounds with queued
    /// service events, a trailing finish barrier.
    fn sample_trace() -> Trace {
        let b = TraceBus::new(3, 2, CostModel::GIGABIT_LAN, true);
        b.set_worker(None);
        b.on_charge(Phase::CreateSketch, SimTime(0.02));
        for round in 0..2 {
            b.on_charge(Phase::NewTree, SimTime(0.001));
            for w in 0..3 {
                b.set_worker(Some(w));
                b.on_request(
                    Phase::BuildHistogram,
                    "push_histogram",
                    1_000_000,
                    2,
                    SimTime::ZERO,
                );
            }
            b.set_worker(None);
            b.on_charge(Phase::BuildHistogram, SimTime(0.25 + round as f64 * 0.01));
            b.set_worker(Some(0));
            b.on_request(Phase::FindSplit, "pull_split", 96, 2, SimTime(1e-5));
            b.set_worker(None);
            b.on_charge(Phase::FindSplit, SimTime(0.05));
        }
        b.on_charge(Phase::Finish, SimTime(0.01));
        b.finish()
    }

    #[test]
    fn critical_path_total_equals_final_sim_time_bit_exactly() {
        let trace = sample_trace();
        let profile = analyze_trace(&trace).unwrap();
        // The headline identity, compared on exact bits.
        let last_end = trace
            .events
            .iter()
            .rfind(|e| e.kind.counts_toward_ledger())
            .unwrap()
            .end()
            .0;
        assert_eq!(
            profile.critical_path.total_secs.to_bits(),
            last_end.to_bits()
        );
        assert_eq!(profile.sim_end_secs.to_bits(), last_end.to_bits());
        // Attribution covers every segment exactly and sums back to the
        // total (float regrouping tolerance; integer counts exact).
        let events: u64 = profile
            .critical_path
            .attribution
            .iter()
            .map(|a| a.events)
            .sum();
        assert_eq!(events, profile.critical_path.segments);
        assert!(
            (profile.critical_path.attributed_secs - profile.critical_path.total_secs).abs()
                <= 1e-9 * profile.critical_path.total_secs.max(1.0)
        );
        // Two boosting rounds plus the setup pseudo-round.
        assert_eq!(profile.rounds.len(), 3);
        assert_eq!(profile.rounds[0].round, 0);
        assert_eq!(profile.rounds[2].round, 2);
    }

    #[test]
    fn utilization_and_ps_split_conserve() {
        let profile = analyze_trace(&sample_trace()).unwrap();
        let span = profile.sim_end_secs;
        for u in &profile.utilization {
            // busy + idle == span is structural; both halves non-negative.
            assert!(u.busy_secs >= 0.0 && u.idle_secs >= 0.0, "{u:?}");
            assert_eq!(
                (u.busy_secs + u.idle_secs).to_bits(),
                (u.busy_secs + (span - u.busy_secs)).to_bits()
            );
        }
        // Three concurrent 1 MB pushes against two servers must queue.
        assert!(profile.ps.service_events > 0);
        assert!(profile.ps.queue_wait_secs > 0.0, "{:?}", profile.ps);
        assert!(profile.ps.max_queue_depth >= 1);
        let servers: f64 = profile
            .utilization
            .iter()
            .filter(|u| u.track.starts_with('s'))
            .map(|u| u.blocked_secs)
            .sum();
        assert_eq!(servers.to_bits(), {
            // blocked on server tracks is exactly the PS queue wait, split
            // per server — regrouped fold, so compare with tolerance.
            assert!((servers - profile.ps.queue_wait_secs).abs() <= 1e-12);
            servers.to_bits()
        });
    }

    #[test]
    fn corrupted_duration_breaks_the_critical_path_identity() {
        let mut trace = sample_trace();
        // Shrink a mid-stream collective: the next segment's begin no
        // longer matches the replayed clock (a gap — validate_events still
        // passes because gaps are legal per track).
        let idx = trace
            .events
            .iter()
            .position(|e| e.kind == EventKind::Collective && e.sim_dur.0 > 0.1)
            .unwrap();
        trace.events[idx].sim_dur = SimTime(0.0);
        trace.validate().expect("gapped trace still validates");
        match analyze_trace(&trace) {
            Err(AnalyzeError::CriticalPath(m)) => {
                assert!(m.contains("does not tile"), "{m}")
            }
            other => panic!("expected CriticalPath, got {other:?}"),
        }
    }

    #[test]
    fn corrupted_service_breaks_conservation() {
        let mut trace = sample_trace();
        // Inflate the last service event on its server far beyond the run:
        // busy exceeds the clock span on that track.
        let idx = trace
            .events
            .iter()
            .rposition(|e| e.kind == EventKind::Service)
            .unwrap();
        trace.events[idx].sim_dur = SimTime(99.0);
        match analyze_trace(&trace) {
            Err(AnalyzeError::Conservation(m)) => {
                assert!(m.contains("conserve") || m.contains("conservation"), "{m}")
            }
            other => panic!("expected Conservation, got {other:?}"),
        }
        // A mid-stream service duration corruption is caught by the replay
        // continuity check (or, when it overlaps, by validation).
        let mut trace = sample_trace();
        let idx = trace
            .events
            .iter()
            .position(|e| e.kind == EventKind::Service)
            .unwrap();
        trace.events[idx].sim_dur = SimTime(0.0);
        assert!(analyze_trace(&trace).is_err());
    }

    #[test]
    fn profile_json_is_deterministic_and_canonical() {
        let a = analyze_trace(&sample_trace()).unwrap();
        let b = analyze_trace(&sample_trace()).unwrap();
        assert_eq!(a, b);
        let ja = a.canonical_json();
        assert_eq!(ja, b.canonical_json());
        assert!(ja.starts_with("{\n  \"kind\": \"trace_profile\""));
        assert!(ja.contains("\"source\": \"train\""));
        assert!(!ja.contains("wall"), "profiles must stay wall-clock free");
        // The events-text round trip yields the same profile byte for byte:
        // offline analysis == in-process analysis.
        let trace = sample_trace();
        let parsed = Trace::parse_events_text(&trace.events_text()).unwrap();
        assert_eq!(analyze_trace(&parsed).unwrap().canonical_json(), ja);
    }

    #[test]
    fn folded_stacks_render_track_phase_name() {
        let profile = analyze_trace(&sample_trace()).unwrap();
        let folded = profile.folded_stacks();
        assert!(folded.contains("net;build_histogram;build_histogram "));
        assert!(folded.contains("s0;build_histogram;push_histogram "));
        for line in folded.lines() {
            let (stack, value) = line.rsplit_once(' ').unwrap();
            assert_eq!(stack.split(';').count(), 3, "{line}");
            let _: u64 = value.parse().unwrap();
        }
    }

    #[test]
    fn empty_trace_profiles_cleanly() {
        let empty = TraceBus::new(1, 1, CostModel::GIGABIT_LAN, true).finish();
        let profile = analyze_trace(&empty).unwrap();
        assert_eq!(profile.sim_end_secs, 0.0);
        assert_eq!(profile.critical_path.segments, 0);
        assert!(profile.utilization.is_empty());
        assert!(profile.faults.is_none());
        assert!(profile.canonical_json().contains("\"events\": 0"));
    }

    #[test]
    fn fault_stretch_is_attributed() {
        let b = TraceBus::new(1, 1, CostModel::GIGABIT_LAN, true);
        b.on_fault(Phase::BuildHistogram, "retry_backoff", SimTime(0.01), 0, 1);
        b.on_charge(Phase::BuildHistogram, SimTime(0.05));
        b.on_charge(Phase::Finish, SimTime(0.01));
        let profile = analyze_trace(&b.finish()).unwrap();
        let f = profile.faults.expect("fault lane present");
        assert_eq!(f.events, 1);
        assert_eq!(f.by_name[0].name, "retry_backoff");
        assert!((f.stretch_secs - 0.01).abs() < 1e-15);
        assert!(f.faultfree_estimate_secs < profile.sim_end_secs);
        assert!(profile.membership.is_none());
    }

    #[test]
    fn membership_stretch_is_attributed_next_to_faults() {
        let b = TraceBus::new(2, 1, CostModel::GIGABIT_LAN, true);
        b.on_membership(Phase::NewTree, "join", SimTime::ZERO, 0, 1);
        b.on_membership(Phase::NewTree, "stripe_handoff", SimTime(0.02), 4096, 1);
        b.on_charge(Phase::NewTree, SimTime(0.03));
        b.on_membership(
            Phase::BuildHistogram,
            "elastic_dilation",
            SimTime(0.05),
            0,
            1,
        );
        b.on_charge(Phase::BuildHistogram, SimTime(0.15));
        b.on_charge(Phase::Finish, SimTime(0.01));
        let profile = analyze_trace(&b.finish()).unwrap();
        let m = profile.membership.clone().expect("membership lane present");
        assert_eq!(m.events, 3);
        assert!((m.stretch_secs - 0.07).abs() < 1e-15);
        assert!(
            (m.fixed_estimate_secs - (profile.sim_end_secs - 0.07)).abs() < 1e-15,
            "{m:?}"
        );
        let names: Vec<&str> = m.by_name.iter().map(|k| k.name.as_str()).collect();
        assert_eq!(names, vec!["elastic_dilation", "join", "stripe_handoff"]);
        // No fault lane in this trace; the sections are independent.
        assert!(profile.faults.is_none());
        let json = profile.canonical_json();
        assert!(json.contains("\"membership\": {"));
        assert!(json.contains("\"fixed_estimate_secs\""));
        assert!(!json.contains("wall"), "profiles must stay wall-clock free");
        assert!(profile.summary(5).contains("membership: 3 events"));
    }
}
