//! Simulated cluster substrate for the DimBoost reproduction.
//!
//! The paper's evaluation runs on physical clusters (5 and 50 machines on
//! 1 Gb Ethernet). This crate substitutes an in-process simulation with two
//! halves:
//!
//! * **A real data path.** The collective operators in [`collectives`]
//!   execute the actual step-structured algorithms of the systems the paper
//!   analyses (Section 3, Figure 3): all-to-one reduce (MLlib), binomial-tree
//!   AllReduce (XGBoost), recursive-halving ReduceScatter (LightGBM), and the
//!   parameter-server batch exchange (DimBoost). Every operator merges real
//!   `f32` buffers and is tested to produce identical sums.
//!
//! * **A simulated clock.** Communication time is charged by the α/β/γ cost
//!   model of Section 3 ([`CostModel`]): α latency per package, β transfer
//!   time per byte, γ merge time per byte. The per-operator formulas are
//!   exactly those of Table 1, so the paper's communication analysis is
//!   reproduced by construction while the data path keeps the simulation
//!   honest.
//!
//! [`CommStats`] accumulates bytes, packages, and simulated seconds so the
//! trainer can decompose run time into computation and communication
//! (Figure 13).
//!
//! On top of the aggregates, [`trace`] records an event-level timeline on
//! the simulated clock (exportable as Chrome-trace-event JSON) and
//! [`registry`] collects counters/gauges/histograms with deterministic
//! percentile exports.

pub mod analyze;
pub mod collectives;
mod cost;
pub mod fault;
pub mod registry;
mod stats;
pub mod trace;
pub mod wire;

pub use analyze::{analyze_trace, AnalyzeError, TraceProfile};
pub use cost::{CostModel, SimTime};
pub use fault::{FaultPlan, FaultSession, FaultSummary, MembershipSummary};
pub use registry::{FixedHistogram, Metric, MetricExport, MetricsRegistry};
pub use stats::{CommLedger, CommStats, Phase, StatsRecorder};
pub use trace::{Trace, TraceBus, TraceEvent};
