//! Event-level tracing on the simulated clock.
//!
//! Aggregates (the per-phase [`CommLedger`], SpanTimer max/skew) say *how
//! much* each phase cost; the trace says *when* and *where* — which worker
//! straggles, how PS queues back up during the batched FIND_SPLIT pulls,
//! whether a change moved the tail or the mean. The [`TraceBus`] records one
//! event per ledger record (plus annotation events that carry no cost), each
//! stamped with a deterministic sequence number, so the canonical export is
//! byte-identical across reruns.
//!
//! # Clock model
//!
//! The trainer is barrier-synchronous: simulated time advances only through
//! explicit charges (`StatsRecorder::charge`), which act as barriers across
//! all workers. The bus therefore keeps a single global cursor `now`:
//!
//! * **Collective** events (charges) occupy `[now, now + t]` on the `net`
//!   track and advance `now`.
//! * **Request** events (PS push/pull operations) are stamped at `now` on
//!   the issuing worker's track with the exact `sim_time` the ledger was
//!   charged (usually zero — the trainer charges batched exchanges, not
//!   individual requests).
//! * **Service** events model each server's share of a request: the
//!   request's bytes split near-evenly across servers, each server merging
//!   its share at `γ` seconds/byte behind a per-server busy cursor. These
//!   derived events expose queueing (wait = start − arrival) and are
//!   *excluded* from the ledger-sum invariant — they re-describe work whose
//!   cost the charges already account for.
//! * **Compute** events mark worker phase slices at `now` with zero
//!   simulated duration and the measured wall seconds attached as an
//!   annotation (wall time is nondeterministic and never moves the clock).
//! * **Step** events annotate the internal rounds of a collective
//!   (halving levels, binomial rounds, per-server batches); like service
//!   events they carry no ledger cost.
//!
//! # Invariants (enforced by [`validate_events`] and proptests)
//!
//! * sequence numbers are exactly `0..n` in emission order;
//! * per track, events are non-overlapping with non-decreasing begin times;
//! * folding Request + Collective events into a [`CommLedger`] in sequence
//!   order reproduces the recorder's ledger **bit-exactly** (same f64 fold
//!   order, exact u64 byte/package counts).

use std::sync::Arc;

use parking_lot::Mutex;

use crate::registry::{FixedHistogram, MetricExport, MetricsRegistry};
use crate::{CommLedger, CostModel, Phase, SimTime};

/// One horizontal lane of the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Track {
    /// A worker's lane: PS requests it issues, its compute slices.
    Worker(u32),
    /// A server's lane: derived service events with queueing.
    Server(u32),
    /// The shared network lane: barrier charges and collective steps.
    Net,
    /// The fault-injection lane: drops, retries, backoff waits, stragglers,
    /// outages, crashes (see [`crate::fault`]).
    Fault,
    /// The elastic-membership lane: joins, leaves, stripe handoffs, epoch
    /// bumps, elastic dilation, speculative backups (see [`crate::fault`]).
    Membership,
}

impl Track {
    /// Stable display name (also the Chrome thread name).
    pub fn label(self) -> String {
        match self {
            Track::Worker(w) => format!("worker {w}"),
            Track::Server(s) => format!("server {s}"),
            Track::Net => "net".to_string(),
            Track::Fault => "faults".to_string(),
            Track::Membership => "membership".to_string(),
        }
    }

    /// Stable Chrome `tid`, collision-free for **every** `u32` worker and
    /// server index: net is 0, workers occupy `1 ..= 2^32`, servers occupy
    /// `2^32 + 1 ..= 2^33`, and the fault lane sits above both at
    /// `2^33 + 1`. (The previous scheme based servers at 1001, so
    /// `Worker(1000)` and `Server(0)` shared a lane — large clusters would
    /// have interleaved two tracks and tripped the per-track monotonicity
    /// validation.) The membership lane sits one above the fault lane.
    pub fn tid(self) -> u64 {
        const SERVER_BASE: u64 = (1 << 32) + 1;
        const FAULT_TID: u64 = (1 << 33) + 1;
        const MEMBERSHIP_TID: u64 = (1 << 33) + 2;
        match self {
            Track::Net => 0,
            Track::Worker(w) => 1 + w as u64,
            Track::Server(s) => SERVER_BASE + s as u64,
            Track::Fault => FAULT_TID,
            Track::Membership => MEMBERSHIP_TID,
        }
    }

    /// Compact stable code used by the events-text format: `net`, `w3`,
    /// `s1`, `fault`, `membership`.
    pub fn code(self) -> String {
        match self {
            Track::Worker(w) => format!("w{w}"),
            Track::Server(s) => format!("s{s}"),
            Track::Net => "net".to_string(),
            Track::Fault => "fault".to_string(),
            Track::Membership => "membership".to_string(),
        }
    }

    /// Inverse of [`Track::code`].
    pub fn from_code(code: &str) -> Option<Track> {
        match code {
            "net" => Some(Track::Net),
            "fault" => Some(Track::Fault),
            "membership" => Some(Track::Membership),
            _ => {
                if let Some(w) = code.strip_prefix('w') {
                    w.parse().ok().map(Track::Worker)
                } else if let Some(s) = code.strip_prefix('s') {
                    s.parse().ok().map(Track::Server)
                } else {
                    None
                }
            }
        }
    }
}

/// What kind of activity an event describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A worker phase slice (wall-clock annotation, zero simulated time).
    Compute,
    /// A PS push/pull operation as the ledger saw it.
    Request,
    /// A derived per-server service slice (queueing view).
    Service,
    /// A simulated-time charge: a barrier on the net track.
    Collective,
    /// An internal round of a collective (annotation only).
    Step,
    /// An injected fault or its recovery cost (drop, retry backoff,
    /// straggler dilation, outage wait, crash). The matching simulated time
    /// is charged separately through the ledger, so fault events never count
    /// toward the ledger-sum invariant.
    Fault,
    /// An elastic-membership event or its cost (join, leave, stripe
    /// handoff/re-shard, elastic dilation, speculative backup, stale-epoch
    /// reject). Like faults, the matching simulated time is charged
    /// separately through the ledger, so membership events never count
    /// toward the ledger-sum invariant.
    Membership,
}

impl EventKind {
    /// Stable snake_case name.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Compute => "compute",
            EventKind::Request => "request",
            EventKind::Service => "service",
            EventKind::Collective => "collective",
            EventKind::Step => "step",
            EventKind::Fault => "fault",
            EventKind::Membership => "membership",
        }
    }

    /// True for the kinds whose `(bytes, packages, sim_dur)` fold into the
    /// [`CommLedger`]-sum invariant.
    pub fn counts_toward_ledger(self) -> bool {
        matches!(self, EventKind::Request | EventKind::Collective)
    }

    /// Inverse of [`EventKind::name`].
    pub fn from_name(name: &str) -> Option<EventKind> {
        Some(match name {
            "compute" => EventKind::Compute,
            "request" => EventKind::Request,
            "service" => EventKind::Service,
            "collective" => EventKind::Collective,
            "step" => EventKind::Step,
            "fault" => EventKind::Fault,
            "membership" => EventKind::Membership,
            _ => return None,
        })
    }
}

/// One begin/end interval on the simulated clock.
///
/// The end time is `begin + sim_dur`; the duration is stored explicitly
/// rather than as a second timestamp so the ledger-sum invariant can compare
/// the *recorded* durations bit-exactly (recomputing `end − begin` would
/// lose ulps).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Deterministic sequence number: position in emission order.
    pub seq: u64,
    /// Lane the event belongs to.
    pub track: Track,
    /// Activity kind.
    pub kind: EventKind,
    /// Execution-plan phase the event is attributed to.
    pub phase: Phase,
    /// Operation name (e.g. `push_histogram`, `allreduce_round`).
    pub name: &'static str,
    /// Begin time on the simulated clock.
    pub begin: SimTime,
    /// Simulated duration (exactly what the ledger was charged, for
    /// Request/Collective events).
    pub sim_dur: SimTime,
    /// Payload bytes.
    pub bytes: u64,
    /// Package count.
    pub packages: u64,
    /// Measured wall seconds (Compute events only; nondeterministic).
    pub wall_secs: f64,
}

impl TraceEvent {
    /// End time on the simulated clock.
    pub fn end(&self) -> SimTime {
        SimTime(self.begin.0 + self.sim_dur.0)
    }
}

#[derive(Debug)]
struct BusState {
    capture: bool,
    events: Vec<TraceEvent>,
    seq: u64,
    /// Worker currently issuing PS requests (None → attributed to net).
    origin: Option<u32>,
    /// Global simulated clock; advanced only by charges (barriers).
    now: f64,
    server_busy: Vec<f64>,
    server_pending: Vec<u64>,
    gamma: f64,
    metrics: MetricsRegistry,
}

impl BusState {
    #[allow(clippy::too_many_arguments)] // private funnel mirroring TraceEvent's fields
    fn push(
        &mut self,
        track: Track,
        kind: EventKind,
        phase: Phase,
        name: &'static str,
        begin: f64,
        sim_dur: f64,
        bytes: u64,
        packages: u64,
        wall_secs: f64,
    ) {
        if !self.capture {
            // Sequence numbers still advance so metrics-only runs and
            // capturing runs agree on counters.
            self.seq += 1;
            return;
        }
        self.events.push(TraceEvent {
            seq: self.seq,
            track,
            kind,
            phase,
            name,
            begin: SimTime(begin),
            sim_dur: SimTime(sim_dur),
            bytes,
            packages,
            wall_secs,
        });
        self.seq += 1;
    }

    /// Derived per-server service slices for one request's payload.
    fn serve(&mut self, phase: Phase, name: &'static str, bytes: u64) {
        let servers = self.server_busy.len();
        if servers == 0 || bytes == 0 {
            return;
        }
        let base = bytes / servers as u64;
        let extra = bytes % servers as u64;
        for s in 0..servers {
            let share = base + u64::from((s as u64) < extra);
            if share == 0 {
                continue;
            }
            let arrival = self.now;
            let start = self.server_busy[s].max(arrival);
            let wait = start - arrival;
            let dur = self.gamma * share as f64;
            if start > arrival {
                self.server_pending[s] += 1;
            } else {
                self.server_pending[s] = 0;
            }
            self.server_busy[s] = start + dur;
            let depth = self.server_pending[s];
            self.metrics
                .observe_with("sim/ps_service_secs", dur, secs_buckets);
            self.metrics
                .observe_with("sim/ps_queue_wait_secs", wait, secs_buckets);
            self.metrics
                .observe_with("sim/ps_queue_depth", depth as f64, depth_buckets);
            self.push(
                Track::Server(s as u32),
                EventKind::Service,
                phase,
                name,
                start,
                dur,
                share,
                1,
                0.0,
            );
        }
    }
}

fn secs_buckets() -> FixedHistogram {
    FixedHistogram::log_spaced(1e-9, 1e4, 3)
}

fn depth_buckets() -> FixedHistogram {
    FixedHistogram::log_spaced(1.0, 1e4, 3)
}

fn bytes_buckets() -> FixedHistogram {
    FixedHistogram::log_spaced(1.0, 1e12, 3)
}

/// The shared, clonable event bus. One per training run; every recorder,
/// timer, and collective that should appear in the trace holds a clone.
#[derive(Debug, Clone)]
pub struct TraceBus {
    workers: usize,
    servers: usize,
    inner: Arc<Mutex<BusState>>,
}

impl TraceBus {
    /// A bus for `workers` workers and `servers` servers under `cost`.
    /// With `capture == false` only the metrics registry is fed — no events
    /// are stored (the cheap always-on mode).
    pub fn new(workers: usize, servers: usize, cost: CostModel, capture: bool) -> Self {
        TraceBus {
            workers,
            servers,
            inner: Arc::new(Mutex::new(BusState {
                capture,
                events: Vec::new(),
                seq: 0,
                origin: None,
                now: 0.0,
                server_busy: vec![0.0; servers],
                server_pending: vec![0; servers],
                gamma: cost.gamma,
                metrics: MetricsRegistry::new(),
            })),
        }
    }

    /// True when events are being stored (not just metrics).
    pub fn capturing(&self) -> bool {
        self.inner.lock().capture
    }

    /// Declares which worker issues the PS requests that follow
    /// (`None` → attribute to the net track).
    pub fn set_worker(&self, worker: Option<u32>) {
        self.inner.lock().origin = worker;
    }

    /// A PS request/response as the ledger recorded it. Called by
    /// `StatsRecorder` for every tagged record, with identical arguments —
    /// that single funnel is what makes the ledger-sum invariant structural.
    pub fn on_request(
        &self,
        phase: Phase,
        name: &'static str,
        bytes: u64,
        packages: u64,
        time: SimTime,
    ) {
        let mut st = self.inner.lock();
        let track = match st.origin {
            Some(w) => Track::Worker(w),
            None => Track::Net,
        };
        let begin = st.now;
        st.metrics.counter_add("sim/ps_requests", 1);
        st.metrics
            .observe_with("sim/ps_request_bytes", bytes as f64, bytes_buckets);
        st.push(
            track,
            EventKind::Request,
            phase,
            name,
            begin,
            time.0,
            bytes,
            packages,
            0.0,
        );
        if st.origin.is_some() {
            st.serve(phase, name, bytes);
        }
        // A request recorded with nonzero simulated time is a synchronous
        // operation in the barrier model: it, too, advances the clock
        // (otherwise the next event on the same track would overlap it).
        st.now += time.0;
    }

    /// A simulated-time charge: a barrier that advances the global clock.
    pub fn on_charge(&self, phase: Phase, time: SimTime) {
        let mut st = self.inner.lock();
        let begin = st.now;
        st.push(
            Track::Net,
            EventKind::Collective,
            phase,
            phase.name(),
            begin,
            time.0,
            0,
            0,
            0.0,
        );
        st.now += time.0;
        let now = st.now;
        // The barrier drains every server queue.
        for s in 0..st.server_busy.len() {
            st.server_busy[s] = st.server_busy[s].max(now);
            st.server_pending[s] = 0;
        }
        st.metrics.gauge_set("sim/clock_secs", now);
    }

    /// An internal collective round (annotation only; no ledger cost).
    pub fn on_step(&self, phase: Phase, name: &'static str, bytes: u64, packages: u64) {
        let mut st = self.inner.lock();
        let begin = st.now;
        st.push(
            Track::Net,
            EventKind::Step,
            phase,
            name,
            begin,
            0.0,
            bytes,
            packages,
            0.0,
        );
    }

    /// An injected fault or its recovery cost. Emitted *before* the charge
    /// that accounts for `dur` on the ledger, so the fault interval
    /// `[now, now + dur]` lines up with the barrier that follows it and the
    /// fault track stays monotone. `count` is free-form per event name
    /// (attempt number for retries, worker id for crashes).
    pub fn on_fault(&self, phase: Phase, name: &'static str, dur: SimTime, bytes: u64, count: u64) {
        let mut st = self.inner.lock();
        let begin = st.now;
        st.metrics.counter_add(&format!("sim/faults/{name}"), 1);
        if dur.0 > 0.0 {
            st.metrics
                .observe_with(&format!("sim/fault_secs/{name}"), dur.0, secs_buckets);
        }
        st.push(
            Track::Fault,
            EventKind::Fault,
            phase,
            name,
            begin,
            dur.0,
            bytes,
            count,
            0.0,
        );
    }

    /// An elastic-membership event or its cost. Mirrors [`TraceBus::on_fault`]:
    /// emitted *before* the charge that accounts for `dur` on the ledger, at
    /// the current clock, without advancing it. `count` is free-form per
    /// event name (machine id for joins/leaves, stripe count for handoffs).
    pub fn on_membership(
        &self,
        phase: Phase,
        name: &'static str,
        dur: SimTime,
        bytes: u64,
        count: u64,
    ) {
        let mut st = self.inner.lock();
        let begin = st.now;
        st.metrics.counter_add(&format!("sim/membership/{name}"), 1);
        if dur.0 > 0.0 {
            st.metrics
                .observe_with(&format!("sim/membership_secs/{name}"), dur.0, secs_buckets);
        }
        st.push(
            Track::Membership,
            EventKind::Membership,
            phase,
            name,
            begin,
            dur.0,
            bytes,
            count,
            0.0,
        );
    }

    /// A worker phase slice measured on the wall clock.
    pub fn on_compute(&self, worker: u32, phase: Phase, wall_secs: f64) {
        let mut st = self.inner.lock();
        let begin = st.now;
        st.metrics.observe_with(
            &format!("wall/phase_secs/{}", phase.name()),
            wall_secs,
            secs_buckets,
        );
        st.push(
            Track::Worker(worker),
            EventKind::Compute,
            phase,
            "compute",
            begin,
            0.0,
            0,
            0,
            wall_secs,
        );
    }

    /// Flat export of the metrics registry (sorted by name).
    pub fn export_metrics(&self) -> Vec<MetricExport> {
        self.inner.lock().metrics.export()
    }

    /// A copy of the events recorded so far (tests, checks).
    pub fn snapshot_events(&self) -> Vec<TraceEvent> {
        self.inner.lock().events.clone()
    }

    /// Drains the bus into a finished [`Trace`].
    pub fn finish(&self) -> Trace {
        let mut st = self.inner.lock();
        Trace {
            workers: self.workers,
            servers: self.servers,
            events: std::mem::take(&mut st.events),
        }
    }
}

/// A finished event trace for one training run.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// Worker count (one track each).
    pub workers: usize,
    /// Server count (one track each).
    pub servers: usize,
    /// Events in emission (sequence) order.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Full Chrome-trace-event JSON, loadable in Perfetto / `chrome://tracing`.
    ///
    /// Compute events are rendered with their measured *wall* duration so
    /// straggler slices are visible; to keep each track's timeline monotone
    /// the exporter replays events against a per-track wall offset (the sum
    /// of wall durations already rendered on that track). Timestamps are
    /// therefore a visualization aid; `args.sim_us`/`args.sim_dur_us` carry
    /// the exact simulated times. Because wall durations differ across
    /// reruns, this export is **not** canonical.
    pub fn chrome_json(&self) -> String {
        self.chrome_json_impl(true)
    }

    /// Canonical Chrome-trace-event JSON: pure simulated clock, wall-clock
    /// annotations omitted. Byte-identical across reruns of the same
    /// configuration.
    pub fn canonical_chrome_json(&self) -> String {
        self.chrome_json_impl(false)
    }

    fn chrome_json_impl(&self, with_wall: bool) -> String {
        let mut out = String::with_capacity(256 + self.events.len() * 160);
        out.push('[');
        let mut first = true;
        let mut emit = |s: String, out: &mut String| {
            if !std::mem::take(&mut first) {
                out.push(',');
            }
            out.push('\n');
            out.push_str(&s);
        };

        emit(
            "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":0,\"tid\":0,\
             \"args\":{\"name\":\"dimboost sim\"}}"
                .to_string(),
            &mut out,
        );
        for track in self.tracks() {
            emit(
                format!(
                    "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":0,\"tid\":{},\
                     \"args\":{{\"name\":\"{}\"}}}}",
                    track.tid(),
                    track.label()
                ),
                &mut out,
            );
        }

        // Wall replay offsets and the last emitted timestamp, per track.
        let mut offsets: std::collections::HashMap<u64, f64> = std::collections::HashMap::new();
        let mut cursor: std::collections::HashMap<u64, f64> = std::collections::HashMap::new();
        for e in &self.events {
            let tid = e.track.tid();
            let offset = if with_wall {
                *offsets.get(&tid).unwrap_or(&0.0)
            } else {
                0.0
            };
            let dur = if with_wall && e.kind == EventKind::Compute {
                e.wall_secs
            } else {
                e.sim_dur.0
            };
            // Clamp to the track's last timestamp: `(b + off) + d` and
            // `b + (off + d)` round differently, so without this the next
            // begin can land one ulp before the previous end.
            let last = *cursor.get(&tid).unwrap_or(&0.0);
            let begin_us = ((e.begin.0 + offset) * 1e6).max(last);
            let end_us = ((e.begin.0 + offset + dur) * 1e6).max(begin_us);
            cursor.insert(tid, end_us);
            let mut args = format!(
                "\"seq\":{},\"kind\":\"{}\",\"phase\":\"{}\",\"bytes\":{},\"packages\":{},\
                 \"sim_us\":{},\"sim_dur_us\":{}",
                e.seq,
                e.kind.name(),
                e.phase.name(),
                e.bytes,
                e.packages,
                json_num(e.begin.0 * 1e6),
                json_num(e.sim_dur.0 * 1e6),
            );
            if with_wall && e.kind == EventKind::Compute {
                args.push_str(&format!(",\"wall_ms\":{}", json_num(e.wall_secs * 1e3)));
            }
            emit(
                format!(
                    "{{\"ph\":\"B\",\"name\":\"{}\",\"cat\":\"{}\",\"pid\":0,\"tid\":{},\
                     \"ts\":{},\"args\":{{{}}}}}",
                    e.name,
                    e.phase.name(),
                    tid,
                    json_num(begin_us),
                    args
                ),
                &mut out,
            );
            emit(
                format!(
                    "{{\"ph\":\"E\",\"pid\":0,\"tid\":{},\"ts\":{}}}",
                    tid,
                    json_num(end_us)
                ),
                &mut out,
            );
            if with_wall && e.kind == EventKind::Compute {
                offsets.insert(tid, offset + e.wall_secs);
            }
        }
        out.push_str("\n]\n");
        out
    }

    /// Every track that can appear, in stable order: net, workers, servers,
    /// and — only when their events were recorded — the fault and
    /// membership lanes.
    pub fn tracks(&self) -> Vec<Track> {
        let mut tracks = vec![Track::Net];
        tracks.extend((0..self.workers as u32).map(Track::Worker));
        tracks.extend((0..self.servers as u32).map(Track::Server));
        if self.events.iter().any(|e| e.track == Track::Fault) {
            tracks.push(Track::Fault);
        }
        if self.events.iter().any(|e| e.track == Track::Membership) {
            tracks.push(Track::Membership);
        }
        tracks
    }

    /// Plain-text timeline summary: per-track activity and the head of the
    /// event stream.
    pub fn timeline(&self) -> String {
        let end: f64 = self.events.iter().map(|e| e.end().0).fold(0.0f64, f64::max);
        let mut out = format!(
            "trace: {} events, {} workers + {} servers + net, sim clock ends at {:.4}s\n",
            self.events.len(),
            self.workers,
            self.servers,
            end
        );
        out.push_str(&format!(
            "{:<12} {:>8} {:>12} {:>14}\n",
            "track", "events", "busy(sim s)", "bytes"
        ));
        for track in self.tracks() {
            let mut n = 0u64;
            let mut busy = 0.0f64;
            let mut bytes = 0u64;
            for e in self.events.iter().filter(|e| e.track == track) {
                n += 1;
                busy += e.sim_dur.0;
                bytes += e.bytes;
            }
            if n == 0 {
                continue;
            }
            out.push_str(&format!(
                "{:<12} {:>8} {:>12.4} {:>14}\n",
                track.label(),
                n,
                busy,
                bytes
            ));
        }
        let head = 12.min(self.events.len());
        if head > 0 {
            out.push_str("first events:\n");
            for e in &self.events[..head] {
                out.push_str(&format!(
                    "  [{:>4}] t={:<10.6} {:<10} {:<15} {:<24} bytes={:<10} dur={:.6}s\n",
                    e.seq,
                    e.begin.0,
                    e.track.label(),
                    e.phase.name(),
                    format!("{}:{}", e.kind.name(), e.name),
                    e.bytes,
                    e.sim_dur.0
                ));
            }
        }
        out
    }

    /// Runs [`validate_events`] over this trace.
    pub fn validate(&self) -> Result<(), String> {
        validate_events(&self.events)
    }

    /// Canonical events-text export: one line per event, every simulated
    /// time printed with Rust's shortest-round-trip `f64` formatting so
    /// [`Trace::parse_events_text`] reconstructs the stream **bit-exactly**.
    /// Wall-clock annotations are omitted (they are nondeterministic), which
    /// makes this artifact byte-identical across reruns — it is the
    /// interchange format between a run and the offline `trace_analyze`
    /// profiler.
    pub fn events_text(&self) -> String {
        let mut out = String::with_capacity(64 + self.events.len() * 96);
        out.push_str(&format!(
            "# dimboost-trace-events v1 workers={} servers={} events={}\n",
            self.workers,
            self.servers,
            self.events.len()
        ));
        for e in &self.events {
            out.push_str(&format!(
                "event seq={} track={} kind={} phase={} name={} begin={} dur={} bytes={} pkgs={}\n",
                e.seq,
                e.track.code(),
                e.kind.name(),
                e.phase.name(),
                e.name,
                e.begin.0,
                e.sim_dur.0,
                e.bytes,
                e.packages
            ));
        }
        out
    }

    /// Parses an [`Trace::events_text`] document back into a trace.
    ///
    /// Because the export uses shortest-round-trip `f64` formatting, the
    /// parsed event stream is bit-identical to the one exported (wall-clock
    /// annotations, which the export drops, come back as zero). Every
    /// malformed input — missing or corrupt header, an unknown field,
    /// a truncated file whose header promises more events than follow (a
    /// trace ending with an open span) — is a typed [`TraceParseError`],
    /// never a panic.
    pub fn parse_events_text(text: &str) -> Result<Trace, TraceParseError> {
        let mut lines = text.lines().enumerate();
        let (_, header) = lines.next().ok_or(TraceParseError::MissingHeader)?;
        let mut fields = header.split_whitespace();
        if (fields.next(), fields.next(), fields.next())
            != (Some("#"), Some("dimboost-trace-events"), Some("v1"))
        {
            return Err(TraceParseError::MissingHeader);
        }
        let (mut workers, mut servers, mut expected) = (None, None, None);
        for field in fields {
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| TraceParseError::Header(format!("bad header field {field:?}")))?;
            let parsed: usize = value
                .parse()
                .map_err(|_| TraceParseError::Header(format!("bad header value {field:?}")))?;
            match key {
                "workers" => workers = Some(parsed),
                "servers" => servers = Some(parsed),
                "events" => expected = Some(parsed),
                _ => {
                    return Err(TraceParseError::Header(format!(
                        "unknown header key {key:?}"
                    )))
                }
            }
        }
        let missing = |what: &str| TraceParseError::Header(format!("header lacks {what}"));
        let workers = workers.ok_or_else(|| missing("workers"))?;
        let servers = servers.ok_or_else(|| missing("servers"))?;
        let expected = expected.ok_or_else(|| missing("events"))?;

        let mut events = Vec::with_capacity(expected);
        for (i, line) in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let lineno = i + 1;
            let err = |message: String| TraceParseError::Line {
                line: lineno,
                message,
            };
            let mut fields = line.split_whitespace();
            if fields.next() != Some("event") {
                return Err(err(format!("expected an `event` line, got {line:?}")));
            }
            let mut kv = std::collections::HashMap::new();
            for field in fields {
                let (key, value) = field
                    .split_once('=')
                    .ok_or_else(|| err(format!("bad field {field:?}")))?;
                kv.insert(key, value);
            }
            let get = |key: &str| {
                kv.get(key)
                    .copied()
                    .ok_or_else(|| err(format!("missing field {key:?}")))
            };
            let num = |key: &str| -> Result<u64, TraceParseError> {
                get(key)?
                    .parse()
                    .map_err(|_| err(format!("bad integer for {key:?}")))
            };
            let secs = |key: &str| -> Result<f64, TraceParseError> {
                get(key)?
                    .parse()
                    .map_err(|_| err(format!("bad number for {key:?}")))
            };
            events.push(TraceEvent {
                seq: num("seq")?,
                track: Track::from_code(get("track")?)
                    .ok_or_else(|| err(format!("unknown track {:?}", kv["track"])))?,
                kind: EventKind::from_name(get("kind")?)
                    .ok_or_else(|| err(format!("unknown kind {:?}", kv["kind"])))?,
                phase: Phase::from_name(get("phase")?)
                    .ok_or_else(|| err(format!("unknown phase {:?}", kv["phase"])))?,
                name: intern_name(get("name")?),
                begin: SimTime(secs("begin")?),
                sim_dur: SimTime(secs("dur")?),
                bytes: num("bytes")?,
                packages: num("pkgs")?,
                wall_secs: 0.0,
            });
        }
        if events.len() != expected {
            return Err(TraceParseError::Truncated {
                expected,
                got: events.len(),
            });
        }
        Ok(Trace {
            workers,
            servers,
            events,
        })
    }
}

/// Why an events-text document failed to parse. A truncated file — the
/// header promises more events than follow, i.e. the trace ends with an
/// open span — is [`TraceParseError::Truncated`], a clean error rather than
/// a panic or a silently shorter trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceParseError {
    /// The first line is not a `# dimboost-trace-events v1 ...` header.
    MissingHeader,
    /// The header line is malformed (bad key, value, or missing count).
    Header(String),
    /// The header promised `expected` events but only `got` parsed —
    /// the file was cut off mid-stream.
    Truncated {
        /// Event count the header declared.
        expected: usize,
        /// Events actually present.
        got: usize,
    },
    /// One event line is malformed.
    Line {
        /// 1-based line number.
        line: usize,
        /// What was wrong with it.
        message: String,
    },
}

impl std::fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceParseError::MissingHeader => {
                write!(
                    f,
                    "not an events-text trace (missing `# dimboost-trace-events v1` header)"
                )
            }
            TraceParseError::Header(m) => write!(f, "bad events-text header: {m}"),
            TraceParseError::Truncated { expected, got } => write!(
                f,
                "truncated trace: header declares {expected} events but only {got} follow"
            ),
            TraceParseError::Line { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl std::error::Error for TraceParseError {}

/// Interns an operation name so parsed events can carry the `&'static str`
/// the in-memory representation uses. Each distinct name leaks once, which
/// is bounded by the small fixed vocabulary of operation names.
fn intern_name(name: &str) -> &'static str {
    // The names the tracer itself emits, fast-pathed without a lock.
    for known in [
        "compute",
        "push_histogram",
        "pull_split",
        "push_sketches",
        "pull_sketches",
        "push_gradients",
        "allreduce_round",
        "server_batch",
        "join",
        "leave",
        "stripe_handoff",
        "stripe_reshard",
        "elastic_dilation",
        "speculative_backup",
        "backup_win",
        "stale_reject",
    ] {
        if known == name {
            return known;
        }
    }
    for phase in Phase::ALL {
        if phase.name() == name {
            return phase.name();
        }
    }
    static INTERNED: std::sync::OnceLock<Mutex<Vec<&'static str>>> = std::sync::OnceLock::new();
    let mut table = INTERNED.get_or_init(|| Mutex::new(Vec::new())).lock();
    if let Some(found) = table.iter().find(|n| **n == name) {
        return found;
    }
    let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
    table.push(leaked);
    leaked
}

/// Shortest-round-trip JSON number (non-finite values become `null`).
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Structural well-formedness of an event stream:
///
/// * sequence numbers are exactly `0..n` in order;
/// * no negative times or durations;
/// * per track, begin times are non-decreasing and events do not overlap
///   (every implicit begin has its matching end before the next begin).
pub fn validate_events(events: &[TraceEvent]) -> Result<(), String> {
    let mut last_end: std::collections::HashMap<u64, (f64, f64)> = std::collections::HashMap::new();
    for (i, e) in events.iter().enumerate() {
        if e.seq != i as u64 {
            return Err(format!("event {i}: seq {} != position {i}", e.seq));
        }
        let bad = |v: f64| v.is_nan() || v < 0.0;
        if bad(e.begin.0) || bad(e.sim_dur.0) || bad(e.wall_secs) {
            return Err(format!(
                "event {i}: negative or NaN time (begin={}, dur={}, wall={})",
                e.begin.0, e.sim_dur.0, e.wall_secs
            ));
        }
        let tid = e.track.tid();
        if let Some(&(prev_begin, prev_end)) = last_end.get(&tid) {
            if e.begin.0 < prev_begin {
                return Err(format!(
                    "event {i}: track {} begin {} precedes previous begin {}",
                    e.track.label(),
                    e.begin.0,
                    prev_begin
                ));
            }
            if e.begin.0 < prev_end {
                return Err(format!(
                    "event {i}: track {} begin {} overlaps previous end {}",
                    e.track.label(),
                    e.begin.0,
                    prev_end
                ));
            }
        }
        last_end.insert(tid, (e.begin.0, e.end().0));
    }
    Ok(())
}

/// Folds the ledger-relevant events (Request + Collective) into a
/// [`CommLedger`] in sequence order. For a trace produced through
/// `StatsRecorder` this reproduces the recorder's ledger **bit-exactly**:
/// same per-phase f64 fold order, exact byte/package counts.
pub fn comm_totals(events: &[TraceEvent]) -> CommLedger {
    let mut ledger = CommLedger::new();
    for e in events {
        if e.kind.counts_toward_ledger() {
            ledger.record(e.phase, e.bytes, e.packages, e.sim_dur);
        }
    }
    ledger
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bus() -> TraceBus {
        TraceBus::new(2, 2, CostModel::GIGABIT_LAN, true)
    }

    #[test]
    fn requests_and_charges_build_a_valid_trace() {
        let b = bus();
        b.set_worker(Some(0));
        b.on_request(
            Phase::BuildHistogram,
            "push_histogram",
            4000,
            2,
            SimTime::ZERO,
        );
        b.set_worker(Some(1));
        b.on_request(
            Phase::BuildHistogram,
            "push_histogram",
            4000,
            2,
            SimTime::ZERO,
        );
        b.set_worker(None);
        b.on_charge(Phase::BuildHistogram, SimTime(0.25));
        b.on_request(Phase::FindSplit, "pull_split", 96, 2, SimTime::ZERO);
        b.on_charge(Phase::FindSplit, SimTime(0.05));
        let trace = b.finish();
        trace.validate().unwrap();
        // 2 requests + 2*2 service + 2 charges + 1 net request = 9 events.
        assert_eq!(trace.events.len(), 9);
        // The second charge begins where the first ended.
        let charges: Vec<&TraceEvent> = trace
            .events
            .iter()
            .filter(|e| e.kind == EventKind::Collective)
            .collect();
        assert_eq!(charges[0].begin, SimTime::ZERO);
        assert_eq!(charges[1].begin, SimTime(0.25));
    }

    #[test]
    fn comm_totals_match_direct_ledger() {
        let b = bus();
        let mut direct = CommLedger::new();
        b.set_worker(Some(0));
        for i in 0..10u64 {
            let t = SimTime(i as f64 * 1e-4);
            b.on_request(Phase::CreateSketch, "push_sketches", 100 + i, 3, t);
            direct.record(Phase::CreateSketch, 100 + i, 3, t);
        }
        b.set_worker(None);
        b.on_charge(Phase::CreateSketch, SimTime(0.125));
        direct.record(Phase::CreateSketch, 0, 0, SimTime(0.125));
        let trace = b.finish();
        assert_eq!(comm_totals(&trace.events), direct);
    }

    #[test]
    fn service_events_queue_behind_busy_servers() {
        let b = bus();
        b.set_worker(Some(0));
        b.on_request(
            Phase::BuildHistogram,
            "push_histogram",
            1_000_000,
            1,
            SimTime::ZERO,
        );
        b.set_worker(Some(1));
        b.on_request(
            Phase::BuildHistogram,
            "push_histogram",
            1_000_000,
            1,
            SimTime::ZERO,
        );
        let trace = b.finish();
        trace.validate().unwrap();
        let services: Vec<&TraceEvent> = trace
            .events
            .iter()
            .filter(|e| e.kind == EventKind::Service)
            .collect();
        assert_eq!(services.len(), 4);
        // Second request's service on server 0 starts after the first ends.
        let s0: Vec<&&TraceEvent> = services
            .iter()
            .filter(|e| e.track == Track::Server(0))
            .collect();
        assert_eq!(s0.len(), 2);
        assert_eq!(s0[1].begin, s0[0].end());
        assert!(s0[1].begin.0 > 0.0);
    }

    #[test]
    fn canonical_export_is_deterministic_and_omits_wall() {
        let run = || {
            let b = bus();
            b.on_compute(0, Phase::BuildHistogram, 0.123);
            b.set_worker(Some(0));
            b.on_request(
                Phase::BuildHistogram,
                "push_histogram",
                64,
                1,
                SimTime::ZERO,
            );
            b.set_worker(None);
            b.on_charge(Phase::BuildHistogram, SimTime(0.5));
            b.finish()
        };
        let a = run().canonical_chrome_json();
        let c = run().canonical_chrome_json();
        assert_eq!(a, c);
        assert!(!a.contains("wall_ms"));
        assert!(a.contains("\"ph\":\"B\""));
        assert!(a.contains("\"thread_name\""));
        // The full export carries the wall annotation.
        assert!(run().chrome_json().contains("wall_ms"));
    }

    #[test]
    fn capture_off_records_metrics_but_no_events() {
        let b = TraceBus::new(1, 1, CostModel::GIGABIT_LAN, false);
        b.set_worker(Some(0));
        b.on_request(Phase::FindSplit, "pull_split", 48, 1, SimTime::ZERO);
        b.on_charge(Phase::FindSplit, SimTime(0.1));
        assert!(b.finish().events.is_empty());
        let metrics = b.export_metrics();
        assert!(metrics.iter().any(|m| m.name == "sim/ps_requests"));
    }

    #[test]
    fn validate_rejects_out_of_order_tracks() {
        let mk = |seq: u64, begin: f64| TraceEvent {
            seq,
            track: Track::Net,
            kind: EventKind::Collective,
            phase: Phase::Finish,
            name: "x",
            begin: SimTime(begin),
            sim_dur: SimTime::ZERO,
            bytes: 0,
            packages: 0,
            wall_secs: 0.0,
        };
        assert!(validate_events(&[mk(0, 1.0), mk(1, 0.5)]).is_err());
        assert!(validate_events(&[mk(0, 0.5), mk(1, 1.0)]).is_ok());
        assert!(validate_events(&[mk(1, 0.0)]).is_err());
    }

    #[test]
    fn tids_never_collide_at_the_worker_server_boundary() {
        // Regression: the old scheme based servers at tid 1001, so
        // Worker(1000) landed on Server(0)'s lane. Build a bus right at
        // that boundary and require every track's tid to be distinct.
        let workers = 1500u32;
        let servers = 8u32;
        let mut seen = std::collections::HashMap::new();
        let tracks = std::iter::once(Track::Net)
            .chain((0..workers).map(Track::Worker))
            .chain((0..servers).map(Track::Server))
            .chain([Track::Fault, Track::Membership]);
        for track in tracks {
            if let Some(other) = seen.insert(track.tid(), track) {
                panic!("tid {} shared by {track:?} and {other:?}", track.tid());
            }
        }
        // The extremes stay distinct too: the last worker, the last server,
        // and the fault/membership lanes all occupy different lanes.
        assert_ne!(Track::Worker(u32::MAX).tid(), Track::Server(0).tid());
        assert_ne!(Track::Server(u32::MAX).tid(), Track::Fault.tid());
        assert_ne!(Track::Fault.tid(), Track::Membership.tid());
        // A bus built at the boundary still yields a validating trace.
        let b = TraceBus::new(workers as usize, 2, CostModel::GIGABIT_LAN, true);
        b.set_worker(Some(1000));
        b.on_request(
            Phase::BuildHistogram,
            "push_histogram",
            64,
            1,
            SimTime::ZERO,
        );
        b.set_worker(None);
        b.on_charge(Phase::BuildHistogram, SimTime(0.1));
        b.finish().validate().unwrap();
    }

    #[test]
    fn export_metrics_is_canonically_sorted_by_name() {
        // Profile reports embed this export verbatim; the order must be a
        // pure function of the metric names, never of observation order.
        // Feed two buses the same traffic in different phase orders and
        // require identical, name-sorted exports.
        let feed = |phases: &[Phase]| {
            let b = TraceBus::new(2, 2, CostModel::GIGABIT_LAN, false);
            for &phase in phases {
                b.set_worker(Some(0));
                b.on_request(phase, "push_histogram", 512, 1, SimTime::ZERO);
                b.set_worker(None);
                b.on_charge(phase, SimTime(0.01));
            }
            b.export_metrics()
        };
        let a = feed(&[Phase::BuildHistogram, Phase::FindSplit]);
        let c = feed(&[Phase::FindSplit, Phase::BuildHistogram]);
        let names: Vec<&str> = a.iter().map(|m| m.name.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted, "export must be sorted by name");
        assert!(!names.is_empty());
        assert_eq!(a, c, "observation order leaked into the export");
    }

    #[test]
    fn track_codes_round_trip() {
        for track in [
            Track::Net,
            Track::Fault,
            Track::Membership,
            Track::Worker(0),
            Track::Worker(1000),
            Track::Server(0),
            Track::Server(7),
        ] {
            assert_eq!(Track::from_code(&track.code()), Some(track));
        }
        assert_eq!(Track::from_code("x9"), None);
        assert_eq!(Track::from_code("w"), None);
    }

    #[test]
    fn membership_events_record_without_advancing_the_clock() {
        let b = bus();
        b.on_charge(Phase::NewTree, SimTime(0.5));
        b.on_membership(Phase::NewTree, "join", SimTime::ZERO, 0, 3);
        b.on_membership(Phase::NewTree, "stripe_handoff", SimTime(0.25), 4096, 1);
        b.on_charge(Phase::NewTree, SimTime(0.25));
        let trace = b.finish();
        trace.validate().unwrap();
        let membership: Vec<&TraceEvent> = trace
            .events
            .iter()
            .filter(|e| e.track == Track::Membership)
            .collect();
        assert_eq!(membership.len(), 2);
        // Emitted at the clock, without moving it: the handoff interval
        // lines up with the charge that follows it.
        assert_eq!(membership[0].begin, SimTime(0.5));
        assert_eq!(membership[1].begin, SimTime(0.5));
        assert_eq!(membership[1].end(), SimTime(0.75));
        assert!(membership.iter().all(|e| e.kind == EventKind::Membership));
        assert!(!EventKind::Membership.counts_toward_ledger());
        // The membership lane appears in the track list, after faults'
        // position, and the canonical text round-trips bit-exactly.
        assert!(trace.tracks().contains(&Track::Membership));
        let parsed = Trace::parse_events_text(&trace.events_text()).unwrap();
        assert_eq!(parsed.events, trace.events);
    }

    #[test]
    fn events_text_round_trips_bit_exactly() {
        let b = bus();
        b.on_compute(0, Phase::BuildHistogram, 0.125);
        b.set_worker(Some(0));
        b.on_request(
            Phase::BuildHistogram,
            "push_histogram",
            4001,
            2,
            SimTime(1e-7),
        );
        b.set_worker(None);
        b.on_charge(Phase::BuildHistogram, SimTime(0.1 + 1e-13));
        b.on_charge(Phase::Finish, SimTime(0.0375));
        let trace = b.finish();
        let parsed = Trace::parse_events_text(&trace.events_text()).unwrap();
        assert_eq!(parsed.workers, trace.workers);
        assert_eq!(parsed.servers, trace.servers);
        assert_eq!(parsed.events.len(), trace.events.len());
        for (a, b) in parsed.events.iter().zip(&trace.events) {
            // Everything but the (deliberately dropped) wall annotation is
            // identical, with times compared on exact bits.
            assert_eq!(a.seq, b.seq);
            assert_eq!(a.track, b.track);
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.phase, b.phase);
            assert_eq!(a.name, b.name);
            assert_eq!(a.begin.0.to_bits(), b.begin.0.to_bits());
            assert_eq!(a.sim_dur.0.to_bits(), b.sim_dur.0.to_bits());
            assert_eq!(a.bytes, b.bytes);
            assert_eq!(a.packages, b.packages);
            assert_eq!(a.wall_secs, 0.0);
        }
        // Re-exporting the parsed trace reproduces the document byte for byte.
        assert_eq!(parsed.events_text(), trace.events_text());
    }

    #[test]
    fn truncated_events_text_is_a_typed_error_not_a_panic() {
        let b = bus();
        b.set_worker(Some(0));
        b.on_request(Phase::FindSplit, "pull_split", 96, 2, SimTime::ZERO);
        b.set_worker(None);
        b.on_charge(Phase::FindSplit, SimTime(0.05));
        let text = b.finish().events_text();
        // Cut the document mid-stream: the header now promises more events
        // than follow — a trace ending with an open span.
        let open_ended: String = text.lines().take(2).map(|l| format!("{l}\n")).collect();
        match Trace::parse_events_text(&open_ended) {
            Err(TraceParseError::Truncated { expected, got }) => {
                assert!(got < expected, "{got} vs {expected}");
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
        // Other malformed inputs are typed errors too.
        assert_eq!(
            Trace::parse_events_text(""),
            Err(TraceParseError::MissingHeader)
        );
        assert_eq!(
            Trace::parse_events_text("not a trace\n"),
            Err(TraceParseError::MissingHeader)
        );
        assert!(matches!(
            Trace::parse_events_text("# dimboost-trace-events v1 workers=1 servers=1\n"),
            Err(TraceParseError::Header(_))
        ));
        let garbled = text.replace("kind=collective", "kind=collectively");
        assert!(matches!(
            Trace::parse_events_text(&garbled),
            Err(TraceParseError::Line { .. })
        ));
    }

    #[test]
    fn empty_and_single_event_traces_are_well_behaved() {
        // Empty: timeline renders, validation passes, events-text round-trips.
        let empty = TraceBus::new(1, 1, CostModel::GIGABIT_LAN, true).finish();
        assert!(empty.timeline().contains("0 events"));
        empty.validate().unwrap();
        let parsed = Trace::parse_events_text(&empty.events_text()).unwrap();
        assert!(parsed.events.is_empty());
        // Single event: same story.
        let b = TraceBus::new(1, 1, CostModel::GIGABIT_LAN, true);
        b.on_charge(Phase::Finish, SimTime(0.25));
        let single = b.finish();
        assert_eq!(single.events.len(), 1);
        single.validate().unwrap();
        assert!(single.timeline().contains("1 events"));
        let parsed = Trace::parse_events_text(&single.events_text()).unwrap();
        assert_eq!(parsed.events, single.events);
    }

    #[test]
    fn timeline_names_tracks() {
        let b = bus();
        b.set_worker(Some(1));
        b.on_request(Phase::FindSplit, "pull_split", 480, 10, SimTime::ZERO);
        b.set_worker(None);
        b.on_charge(Phase::FindSplit, SimTime(0.01));
        let t = b.finish().timeline();
        assert!(t.contains("worker 1"));
        assert!(t.contains("net"));
        assert!(t.contains("find_split"));
    }
}
