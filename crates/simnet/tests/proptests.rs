//! Property-based tests: all four aggregation strategies compute the same
//! sum on arbitrary inputs, and their cost formulas respect the paper's
//! ordering claims.

use dimboost_simnet::collectives::{
    allreduce_binomial, allreduce_binomial_traced, partition_ranges, ps_batch_exchange,
    ps_batch_exchange_traced, reduce_scatter_halving, reduce_scatter_halving_traced, reduce_to_one,
};
use dimboost_simnet::trace::{comm_totals, validate_events};
use dimboost_simnet::{CommLedger, CostModel, Phase, SimTime, TraceBus};
use proptest::collection::vec;
use proptest::prelude::*;

fn arb_buffers() -> impl Strategy<Value = Vec<Vec<f32>>> {
    (1usize..10, 1usize..80).prop_flat_map(|(w, len)| vec(vec(-100.0f32..100.0, len..=len), w..=w))
}

const WORKERS: usize = 3;
const SERVERS: usize = 2;

/// One abstract operation on a [`TraceBus`], the full instrumentation
/// surface the trainer exercises.
#[derive(Debug, Clone)]
enum BusOp {
    /// `(worker origin, phase index, bytes, packages, sim seconds)`
    Request(Option<u32>, usize, u64, u64, f64),
    /// `(phase index, sim seconds)` — a barrier charge.
    Charge(usize, f64),
    /// `(phase index, bytes)` — a zero-cost collective annotation.
    Step(usize, u64),
    /// `(worker, phase index, wall seconds)` — a compute slice.
    Compute(u32, usize, f64),
}

fn arb_bus_ops() -> impl Strategy<Value = Vec<BusOp>> {
    // `(kind, origin, phase, bytes, packages, secs)` flattened into one
    // tuple (the shim has no `prop_oneof`): `origin` 0 means "no worker".
    let op = (
        0usize..4,
        0usize..WORKERS + 1,
        0usize..Phase::COUNT,
        0u64..1 << 20,
        1u64..16,
        0.0f64..0.05,
    )
        .prop_map(|(kind, origin, p, bytes, packages, secs)| match kind {
            0 => BusOp::Request(
                origin.checked_sub(1).map(|w| w as u32),
                p,
                bytes,
                packages,
                secs,
            ),
            1 => BusOp::Charge(p, secs),
            2 => BusOp::Step(p, bytes),
            _ => BusOp::Compute((origin % WORKERS) as u32, p, secs),
        });
    vec(op, 0..60)
}

/// Applies `ops` to the bus and (optionally) mirrors the ledger-visible
/// subset into a [`CommLedger`] the way `StatsRecorder` would.
fn apply_ops(bus: &TraceBus, ops: &[BusOp], mut mirror: Option<&mut CommLedger>) {
    for op in ops {
        match *op {
            BusOp::Request(worker, p, bytes, packages, secs) => {
                let phase = Phase::ALL[p];
                bus.set_worker(worker);
                bus.on_request(phase, "op", bytes, packages, SimTime(secs));
                bus.set_worker(None);
                if let Some(ledger) = mirror.as_deref_mut() {
                    ledger.record(phase, bytes, packages, SimTime(secs));
                }
            }
            BusOp::Charge(p, secs) => {
                let phase = Phase::ALL[p];
                bus.on_charge(phase, SimTime(secs));
                if let Some(ledger) = mirror.as_deref_mut() {
                    ledger.record(phase, 0, 0, SimTime(secs));
                }
            }
            BusOp::Step(p, bytes) => bus.on_step(Phase::ALL[p], "step", bytes, 1),
            BusOp::Compute(w, p, secs) => bus.on_compute(w, Phase::ALL[p], secs),
        }
    }
}

proptest! {
    /// Data-path equivalence across all strategies.
    #[test]
    fn strategies_compute_identical_sums(buffers in arb_buffers(), servers in 1usize..6) {
        let m = CostModel::FREE;
        let len = buffers[0].len();
        let mut expected = vec![0.0f64; len];
        for b in &buffers {
            for (e, &v) in expected.iter_mut().zip(b) {
                *e += v as f64;
            }
        }
        let close = |got: &[f32]| -> bool {
            got.iter().zip(&expected).all(|(g, e)| (*g as f64 - e).abs() < 1e-2)
        };
        let (r, _) = reduce_to_one(&buffers, 0, &m);
        prop_assert!(close(&r));
        let (a, _) = allreduce_binomial(&buffers, &m);
        prop_assert!(close(&a));
        let (s, _) = reduce_scatter_halving(&buffers, &m);
        prop_assert!(close(&s.assemble()));
        let (p, _) = ps_batch_exchange(&buffers, servers, &m);
        prop_assert!(close(&p.assemble()));
    }

    /// Scatter results always partition the index space exactly.
    #[test]
    fn scatter_partitions_indices(buffers in arb_buffers()) {
        let (s, _) = reduce_scatter_halving(&buffers, &CostModel::FREE);
        let len = buffers[0].len();
        let mut seen = vec![0u8; len];
        for seg in &s.segments {
            prop_assert_eq!(seg.data.len(), seg.range.len());
            for i in seg.range.clone() {
                seen[i] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1));
    }

    /// partition_ranges is an exact, near-equal cover.
    #[test]
    fn partition_ranges_properties(len in 0usize..1000, parts in 1usize..20) {
        let ranges = partition_ranges(len, parts);
        prop_assert_eq!(ranges.len(), parts);
        prop_assert_eq!(ranges.iter().map(|r| r.len()).sum::<usize>(), len);
        let mut pos = 0;
        for r in &ranges {
            prop_assert_eq!(r.start, pos);
            pos = r.end;
        }
        let sizes: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
        let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        prop_assert!(max - min <= 1);
    }

    /// Cost-model ordering for large messages: PS exchange never loses to
    /// all-to-one reduce or binomial allreduce once the bandwidth term
    /// dominates latency.
    #[test]
    fn large_message_ordering(w in 2usize..64, h_mb in 8usize..128) {
        let m = CostModel::GIGABIT_LAN;
        let h = h_mb << 20;
        let dim = m.t_ps_exchange(h, w).seconds();
        let mllib = m.t_reduce_to_one(h, w).seconds();
        let xgb = m.t_allreduce_binomial(h, w).seconds();
        prop_assert!(dim <= mllib + 1e-9);
        prop_assert!(dim <= xgb + 1e-9);
    }

    /// Any sequence of bus operations yields a well-formed trace whose
    /// communication events sum — per phase, bit-exactly — to the ledger a
    /// direct mirror of the same sequence accumulates. This is the structural
    /// invariant behind `StatsRecorder`'s single instrumentation funnel.
    #[test]
    fn trace_events_well_formed_and_sum_to_ledger(ops in arb_bus_ops()) {
        let bus = TraceBus::new(WORKERS, SERVERS, CostModel::GIGABIT_LAN, true);
        let mut mirror = CommLedger::default();
        apply_ops(&bus, &ops, Some(&mut mirror));
        let trace = bus.finish();
        prop_assert!(trace.validate().is_ok(), "{:?}", trace.validate());
        prop_assert!(validate_events(&trace.events).is_ok());
        prop_assert_eq!(comm_totals(&trace.events), mirror);
    }

    /// Replaying the same operation sequence produces a byte-identical
    /// canonical trace: the export depends only on simulated-clock state.
    #[test]
    fn canonical_trace_deterministic(ops in arb_bus_ops()) {
        let render = || {
            let bus = TraceBus::new(WORKERS, SERVERS, CostModel::GIGABIT_LAN, true);
            apply_ops(&bus, &ops, None);
            bus.finish().canonical_chrome_json()
        };
        prop_assert_eq!(render(), render());
    }

    /// The traced collective variants only add annotation events — the
    /// resulting stream still validates and charges nothing to the ledger.
    #[test]
    fn traced_collectives_are_well_formed(buffers in arb_buffers(), servers in 1usize..6) {
        let m = CostModel::GIGABIT_LAN;
        let bus = TraceBus::new(buffers.len(), servers, m, true);
        let hook = Some((&bus, Phase::BuildHistogram));
        allreduce_binomial_traced(&buffers, &m, hook);
        reduce_scatter_halving_traced(&buffers, &m, hook);
        ps_batch_exchange_traced(&buffers, servers, &m, hook);
        let trace = bus.finish();
        prop_assert!(validate_events(&trace.events).is_ok());
        prop_assert!(comm_totals(&trace.events).total().is_empty());
    }

    /// The recursive-halving ReduceScatter charges exactly Table 1's closed
    /// form, `(w−1)/w·h·β + (α + h·γ)·⌈log₂ w⌉`, doubled when `w` is not a
    /// power of two — for arbitrary worker counts, buffer lengths, and cost
    /// models. The expected value is recomputed here from first principles
    /// (same expression, independent code path), so any drift between the
    /// collective's accounting and the documented formula fails the test.
    #[test]
    fn reduce_scatter_charges_closed_form(
        w in 1usize..33,
        len in 1usize..200,
        alpha in 0.0f64..1e-2,
        beta in 0.0f64..1e-7,
        gamma in 0.0f64..1e-8,
    ) {
        let m = CostModel { alpha, beta, gamma };
        let buffers = vec![vec![1.0f32; len]; w];
        let bus = TraceBus::new(w, 1, m, true);
        let (_, stats) =
            reduce_scatter_halving_traced(&buffers, &m, Some((&bus, Phase::BuildHistogram)));
        if w == 1 {
            // Degenerate case: nothing moves, nothing is charged.
            prop_assert_eq!(stats.sim_time.seconds(), 0.0);
            prop_assert_eq!(stats.bytes, 0);
        } else {
            let h = (len * 4) as f64;
            let w_f = w as f64;
            let steps = w_f.log2().ceil();
            let base = (w_f - 1.0) / w_f * h * beta + (alpha + h * gamma) * steps;
            let expected = if w.is_power_of_two() { base } else { 2.0 * base };
            // Bit-equal, not approximate: both sides evaluate the identical
            // sequence of f64 operations.
            prop_assert_eq!(stats.sim_time.seconds(), expected, "w={} len={}", w, len);
        }
    }

    /// The p-server generalization is monotone: more servers never slow the
    /// exchange, and p = w matches the co-located closed form (Table 4's
    /// mechanism).
    #[test]
    fn ps_exchange_monotone_in_servers(w in 2usize..64, h_mb in 1usize..64, p in 1usize..64) {
        let m = CostModel::GIGABIT_LAN;
        let h = h_mb << 20;
        let p = p.min(w);
        let t_p = m.t_ps_exchange_p(h, w, p).seconds();
        if p > 1 {
            let t_fewer = m.t_ps_exchange_p(h, w, p - 1).seconds();
            prop_assert!(t_p <= t_fewer + 1e-9, "p={} {} vs p-1 {}", p, t_p, t_fewer);
        }
        let t_full = m.t_ps_exchange_p(h, w, w).seconds();
        prop_assert!((t_full - m.t_ps_exchange(h, w).seconds()).abs() < 1e-12);
        prop_assert!(t_p + 1e-9 >= t_full);
    }
}

use dimboost_simnet::fault::{Fate, FaultPlan};

fn arb_fault_plan() -> impl Strategy<Value = FaultPlan> {
    (any::<u64>(), 0.0f64..0.4, 0.0f64..0.3, 0.0f64..0.3).prop_map(
        |(seed, drop_p, ack_drop_p, dup_p)| FaultPlan {
            seed,
            drop_p,
            ack_drop_p,
            dup_p,
            ..FaultPlan::default()
        },
    )
}

proptest! {
    /// Fault-plan determinism: the same seed yields the identical fate
    /// sequence regardless of query order, a clone replays it exactly, and
    /// any seed change produces some different schedule over enough
    /// coordinates. Backoff delays are equally pure in their coordinates.
    #[test]
    fn fault_plan_is_deterministic(plan in arb_fault_plan(), workers in 1u32..5, seqs in 1u64..64) {
        let clone = plan.clone();
        let mut coords = Vec::new();
        for w in 0..workers {
            for s in 0..seqs {
                for a in 0..4u32 {
                    coords.push((w, s, a));
                }
            }
        }
        let forward: Vec<Fate> = coords.iter().map(|&(w, s, a)| plan.fate(w, s, a)).collect();
        let mut backward: Vec<Fate> =
            coords.iter().rev().map(|&(w, s, a)| clone.fate(w, s, a)).collect();
        backward.reverse();
        prop_assert_eq!(&forward, &backward);
        for (i, &(w, s, a)) in coords.iter().enumerate() {
            prop_assert_eq!(forward[i], plan.fate(w, s, a));
            let b0 = plan.backoff_secs(w, s, a);
            prop_assert!(b0 == clone.backoff_secs(w, s, a));
        }
    }

    /// The documented backoff bound: the cap applies *after* jitter, so a
    /// jittered delay never exceeds `backoff_max_secs`. More precisely,
    /// with `capped = min(base · 2^attempt, max)` the delay lies in
    /// `[capped / 2, capped]` — pinned here over arbitrary
    /// `(seed, worker, seq, attempt)` coordinates, along with purity in
    /// those coordinates.
    #[test]
    fn backoff_never_exceeds_cap(
        seed in any::<u64>(),
        worker in 0u32..64,
        seq in any::<u64>(),
        attempt in 0u32..64,
        base_scale in 1u32..1000,
        max_scale in 1u32..1000,
    ) {
        let plan = FaultPlan {
            seed,
            backoff_base_secs: base_scale as f64 * 1e-4,
            backoff_max_secs: max_scale as f64 * 1e-3,
            ..FaultPlan::default()
        };
        let delay = plan.backoff_secs(worker, seq, attempt);
        let capped = (plan.backoff_base_secs * 2f64.powi(attempt.min(48) as i32))
            .min(plan.backoff_max_secs);
        // `<=`, not `<`: the jitter factor `0.5 + 0.5·U[0,1)` can round up
        // to exactly 1.0 in the top ulp of U.
        prop_assert!(delay <= capped, "delay {delay} > capped exponential {capped}");
        prop_assert!(delay >= capped / 2.0, "delay {delay} below jitter floor {}", capped / 2.0);
        prop_assert!(delay <= plan.backoff_max_secs, "delay {delay} exceeds the cap");
        // Pure: re-asking with identical coordinates replays the value.
        prop_assert!(delay == plan.clone().backoff_secs(worker, seq, attempt));
    }

    /// Fate probabilities partition correctly: with all probabilities zero
    /// every message delivers; with drop_p = 1 every attempt drops.
    #[test]
    fn fate_extremes(seed in any::<u64>(), w in 0u32..8, s in 0u64..256) {
        let clean = FaultPlan { seed, ..FaultPlan::default() };
        prop_assert_eq!(clean.fate(w, s, 0), Fate::Deliver);
        prop_assert!(!clean.perturbs_messages());
        let lossy = FaultPlan { seed, drop_p: 1.0, ..FaultPlan::default() };
        prop_assert_eq!(lossy.fate(w, s, 0), Fate::DropRequest);
    }
}
