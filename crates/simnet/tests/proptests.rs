//! Property-based tests: all four aggregation strategies compute the same
//! sum on arbitrary inputs, and their cost formulas respect the paper's
//! ordering claims.

use dimboost_simnet::collectives::{
    allreduce_binomial, partition_ranges, ps_batch_exchange, reduce_scatter_halving, reduce_to_one,
};
use dimboost_simnet::CostModel;
use proptest::collection::vec;
use proptest::prelude::*;

fn arb_buffers() -> impl Strategy<Value = Vec<Vec<f32>>> {
    (1usize..10, 1usize..80).prop_flat_map(|(w, len)| vec(vec(-100.0f32..100.0, len..=len), w..=w))
}

proptest! {
    /// Data-path equivalence across all strategies.
    #[test]
    fn strategies_compute_identical_sums(buffers in arb_buffers(), servers in 1usize..6) {
        let m = CostModel::FREE;
        let len = buffers[0].len();
        let mut expected = vec![0.0f64; len];
        for b in &buffers {
            for (e, &v) in expected.iter_mut().zip(b) {
                *e += v as f64;
            }
        }
        let close = |got: &[f32]| -> bool {
            got.iter().zip(&expected).all(|(g, e)| (*g as f64 - e).abs() < 1e-2)
        };
        let (r, _) = reduce_to_one(&buffers, 0, &m);
        prop_assert!(close(&r));
        let (a, _) = allreduce_binomial(&buffers, &m);
        prop_assert!(close(&a));
        let (s, _) = reduce_scatter_halving(&buffers, &m);
        prop_assert!(close(&s.assemble()));
        let (p, _) = ps_batch_exchange(&buffers, servers, &m);
        prop_assert!(close(&p.assemble()));
    }

    /// Scatter results always partition the index space exactly.
    #[test]
    fn scatter_partitions_indices(buffers in arb_buffers()) {
        let (s, _) = reduce_scatter_halving(&buffers, &CostModel::FREE);
        let len = buffers[0].len();
        let mut seen = vec![0u8; len];
        for seg in &s.segments {
            prop_assert_eq!(seg.data.len(), seg.range.len());
            for i in seg.range.clone() {
                seen[i] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1));
    }

    /// partition_ranges is an exact, near-equal cover.
    #[test]
    fn partition_ranges_properties(len in 0usize..1000, parts in 1usize..20) {
        let ranges = partition_ranges(len, parts);
        prop_assert_eq!(ranges.len(), parts);
        prop_assert_eq!(ranges.iter().map(|r| r.len()).sum::<usize>(), len);
        let mut pos = 0;
        for r in &ranges {
            prop_assert_eq!(r.start, pos);
            pos = r.end;
        }
        let sizes: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
        let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        prop_assert!(max - min <= 1);
    }

    /// Cost-model ordering for large messages: PS exchange never loses to
    /// all-to-one reduce or binomial allreduce once the bandwidth term
    /// dominates latency.
    #[test]
    fn large_message_ordering(w in 2usize..64, h_mb in 8usize..128) {
        let m = CostModel::GIGABIT_LAN;
        let h = h_mb << 20;
        let dim = m.t_ps_exchange(h, w).seconds();
        let mllib = m.t_reduce_to_one(h, w).seconds();
        let xgb = m.t_allreduce_binomial(h, w).seconds();
        prop_assert!(dim <= mllib + 1e-9);
        prop_assert!(dim <= xgb + 1e-9);
    }

    /// The p-server generalization is monotone: more servers never slow the
    /// exchange, and p = w matches the co-located closed form (Table 4's
    /// mechanism).
    #[test]
    fn ps_exchange_monotone_in_servers(w in 2usize..64, h_mb in 1usize..64, p in 1usize..64) {
        let m = CostModel::GIGABIT_LAN;
        let h = h_mb << 20;
        let p = p.min(w);
        let t_p = m.t_ps_exchange_p(h, w, p).seconds();
        if p > 1 {
            let t_fewer = m.t_ps_exchange_p(h, w, p - 1).seconds();
            prop_assert!(t_p <= t_fewer + 1e-9, "p={} {} vs p-1 {}", p, t_p, t_fewer);
        }
        let t_full = m.t_ps_exchange_p(h, w, w).seconds();
        prop_assert!((t_full - m.t_ps_exchange(h, w).seconds()).abs() < 1e-12);
        prop_assert!(t_p + 1e-9 >= t_full);
    }
}
