//! Property-based tests for the dataset layer.

use dimboost_data::libsvm::{read_libsvm, write_libsvm, LibsvmOptions};
use dimboost_data::partition::{partition_rows, train_test_split};
use dimboost_data::synthetic::{generate, SparseGenConfig};
use dimboost_data::{Dataset, SparseInstance};
use proptest::collection::vec;
use proptest::prelude::*;

/// Strategy producing a small random dataset.
fn arb_dataset() -> impl Strategy<Value = Dataset> {
    (1usize..40, 1usize..30).prop_flat_map(|(rows, features)| {
        vec(
            (
                vec((0u32..features as u32, -10.0f32..10.0), 0..features),
                any::<bool>(),
            ),
            rows..=rows,
        )
        .prop_map(move |raw| {
            let mut instances = Vec::new();
            let mut labels = Vec::new();
            for (pairs, label) in raw {
                let mut pairs = pairs;
                pairs.sort_unstable_by_key(|&(i, _)| i);
                pairs.dedup_by_key(|&mut (i, _)| i);
                instances.push(SparseInstance::from_pairs(pairs).unwrap());
                labels.push(if label { 1.0 } else { 0.0 });
            }
            Dataset::from_instances(&instances, labels, features).unwrap()
        })
    })
}

proptest! {
    /// Partitioning preserves every row exactly once, in order.
    #[test]
    fn partition_is_exact_cover(ds in arb_dataset(), w in 1usize..8) {
        let shards = partition_rows(&ds, w).unwrap();
        let total: usize = shards.iter().map(|s| s.num_rows()).sum();
        prop_assert_eq!(total, ds.num_rows());
        let mut row = 0;
        for shard in &shards {
            for i in 0..shard.num_rows() {
                prop_assert_eq!(shard.label(i), ds.label(row));
                prop_assert_eq!(shard.row(i).indices(), ds.row(row).indices());
                prop_assert_eq!(shard.row(i).values(), ds.row(row).values());
                row += 1;
            }
        }
        // Shard sizes differ by at most one.
        let sizes: Vec<usize> = shards.iter().map(|s| s.num_rows()).collect();
        let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        prop_assert!(max - min <= 1);
    }

    /// Train/test split is a permutation partition of the rows.
    #[test]
    fn split_is_permutation(ds in arb_dataset(), seed in any::<u64>()) {
        let (train, test) = train_test_split(&ds, 0.25, seed).unwrap();
        prop_assert_eq!(train.num_rows() + test.num_rows(), ds.num_rows());
        // Multiset of (label, nnz) pairs is preserved.
        let mut orig: Vec<(u32, usize)> =
            (0..ds.num_rows()).map(|i| (ds.label(i).to_bits(), ds.row(i).nnz())).collect();
        let mut got: Vec<(u32, usize)> = (0..train.num_rows())
            .map(|i| (train.label(i).to_bits(), train.row(i).nnz()))
            .chain((0..test.num_rows()).map(|i| (test.label(i).to_bits(), test.row(i).nnz())))
            .collect();
        orig.sort_unstable();
        got.sort_unstable();
        prop_assert_eq!(orig, got);
    }

    /// LibSVM write → read is lossless for binary-labelled data.
    #[test]
    fn libsvm_roundtrip(ds in arb_dataset()) {
        let mut buf = Vec::new();
        write_libsvm(&mut buf, &ds).unwrap();
        let opts = LibsvmOptions {
            num_features: Some(ds.num_features()),
            ..Default::default()
        };
        let back = read_libsvm(buf.as_slice(), opts).unwrap();
        prop_assert_eq!(back, ds);
    }

    /// restrict_features never increases nnz and keeps row count and labels.
    #[test]
    fn restrict_features_monotone(ds in arb_dataset(), m in 1usize..30) {
        let m = m.min(ds.num_features());
        let r = ds.restrict_features(m);
        prop_assert_eq!(r.num_rows(), ds.num_rows());
        prop_assert_eq!(r.num_features(), m);
        prop_assert!(r.nnz() <= ds.nnz());
        prop_assert_eq!(r.labels(), ds.labels());
        for i in 0..r.num_rows() {
            prop_assert!(r.row(i).indices().iter().all(|&f| (f as usize) < m));
        }
    }

    /// The generator respects the declared shape for arbitrary configs.
    #[test]
    fn generator_shape(rows in 1usize..200, features in 2usize..300, nnz in 1usize..50, seed in any::<u64>()) {
        let cfg = SparseGenConfig::new(rows, features, nnz.min(features), seed);
        let ds = generate(&cfg);
        prop_assert_eq!(ds.num_rows(), rows);
        prop_assert_eq!(ds.num_features(), features);
        for i in 0..ds.num_rows() {
            let idx = ds.row(i).indices();
            prop_assert!(idx.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(idx.iter().all(|&f| (f as usize) < features));
        }
    }
}
