//! Row partitioning across workers and train/test splitting.
//!
//! DimBoost (like MLlib, XGBoost, and data-parallel LightGBM) partitions the
//! training data **by instances** across workers (Section 1, step 1 of the
//! core operation). The partitioner here produces contiguous, near-equal
//! shards, which mirrors the HDFS-block-oriented ETL module described in
//! Section 7.1.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::{DataError, Dataset};

/// Splits `dataset` into `num_workers` contiguous row shards whose sizes
/// differ by at most one row.
pub fn partition_rows(dataset: &Dataset, num_workers: usize) -> Result<Vec<Dataset>, DataError> {
    if num_workers == 0 {
        return Err(DataError::InvalidConfig(
            "num_workers must be positive".into(),
        ));
    }
    let n = dataset.num_rows();
    let mut shards = Vec::with_capacity(num_workers);
    let base = n / num_workers;
    let extra = n % num_workers;
    let mut start = 0;
    for w in 0..num_workers {
        let len = base + usize::from(w < extra);
        let rows: Vec<usize> = (start..start + len).collect();
        shards.push(dataset.subset(&rows));
        start += len;
    }
    Ok(shards)
}

/// Returns the `[start, end)` row range of stripe `stripe` when `num_rows`
/// rows are cut into `num_stripes` contiguous stripes.
///
/// Matches [`partition_rows`] exactly: the first `num_rows % num_stripes`
/// stripes get one extra row. Because the mapping depends only on
/// `(num_rows, num_stripes)`, a stripe owned by any machine covers the same
/// global row ids regardless of membership history — this is the stable
/// row→stripe assignment the elastic trainer re-shards through.
pub fn stripe_bounds(
    num_rows: usize,
    num_stripes: usize,
    stripe: usize,
) -> Result<(usize, usize), DataError> {
    if num_stripes == 0 {
        return Err(DataError::InvalidConfig(
            "num_stripes must be positive".into(),
        ));
    }
    if stripe >= num_stripes {
        return Err(DataError::InvalidConfig(format!(
            "stripe {stripe} out of range for {num_stripes} stripes"
        )));
    }
    let base = num_rows / num_stripes;
    let extra = num_rows % num_stripes;
    let start = stripe * base + stripe.min(extra);
    let len = base + usize::from(stripe < extra);
    Ok((start, start + len))
}

/// Maps a global row id to the stripe that owns it (inverse of
/// [`stripe_bounds`]), in O(1) via the same base/extra arithmetic.
pub fn stripe_of_row(num_rows: usize, num_stripes: usize, row: usize) -> Result<usize, DataError> {
    if num_stripes == 0 {
        return Err(DataError::InvalidConfig(
            "num_stripes must be positive".into(),
        ));
    }
    if row >= num_rows {
        return Err(DataError::InvalidConfig(format!(
            "row {row} out of range for {num_rows} rows"
        )));
    }
    let base = num_rows / num_stripes;
    let extra = num_rows % num_stripes;
    // The first `extra` stripes are `base + 1` rows wide and span the prefix
    // `[0, extra * (base + 1))`; the rest are exactly `base` rows wide.
    let fat_span = extra * (base + 1);
    let stripe = if row < fat_span {
        row / (base + 1)
    } else {
        extra + (row - fat_span) / base
    };
    Ok(stripe)
}

/// Shuffles rows with the given seed and splits off the last `test_fraction`
/// as the test set (the paper uses 90% train / 10% test).
pub fn train_test_split(
    dataset: &Dataset,
    test_fraction: f64,
    seed: u64,
) -> Result<(Dataset, Dataset), DataError> {
    if !(0.0..1.0).contains(&test_fraction) {
        return Err(DataError::InvalidConfig(format!(
            "test_fraction must be in [0, 1), got {test_fraction}"
        )));
    }
    let n = dataset.num_rows();
    if n == 0 {
        return Err(DataError::EmptyDataset);
    }
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    order.shuffle(&mut rng);
    let n_test = ((n as f64) * test_fraction).round() as usize;
    let n_train = n - n_test;
    let train = dataset.subset(&order[..n_train]);
    let test = dataset.subset(&order[n_train..]);
    Ok((train, test))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{generate, SparseGenConfig};

    fn toy(n: usize) -> Dataset {
        generate(&SparseGenConfig::new(n, 50, 8, 42))
    }

    #[test]
    fn partition_covers_all_rows_evenly() {
        let ds = toy(103);
        let shards = partition_rows(&ds, 5).unwrap();
        assert_eq!(shards.len(), 5);
        let sizes: Vec<usize> = shards.iter().map(|s| s.num_rows()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 103);
        assert_eq!(sizes, vec![21, 21, 21, 20, 20]);
        // Shards are contiguous: first shard's first row == dataset row 0.
        assert_eq!(shards[0].label(0), ds.label(0));
    }

    #[test]
    fn partition_more_workers_than_rows() {
        let ds = toy(3);
        let shards = partition_rows(&ds, 5).unwrap();
        let sizes: Vec<usize> = shards.iter().map(|s| s.num_rows()).collect();
        assert_eq!(sizes, vec![1, 1, 1, 0, 0]);
    }

    #[test]
    fn partition_rejects_zero_workers() {
        assert!(partition_rows(&toy(10), 0).is_err());
    }

    #[test]
    fn stripe_bounds_agree_with_partition_rows() {
        for &(n, k) in &[(103usize, 5usize), (3, 5), (10, 1), (1000, 7), (0, 3)] {
            let ds = toy(n.max(1));
            let ds = ds.subset(&(0..n).collect::<Vec<_>>());
            let shards = partition_rows(&ds, k).unwrap();
            let mut start = 0;
            for (s, shard) in shards.iter().enumerate() {
                let (lo, hi) = stripe_bounds(n, k, s).unwrap();
                assert_eq!((lo, hi), (start, start + shard.num_rows()));
                start = hi;
            }
            assert_eq!(start, n);
        }
    }

    #[test]
    fn stripe_of_row_inverts_stripe_bounds() {
        for &(n, k) in &[(103usize, 5usize), (3, 5), (10, 1), (1000, 7), (64, 64)] {
            for s in 0..k {
                let (lo, hi) = stripe_bounds(n, k, s).unwrap();
                for row in lo..hi {
                    assert_eq!(
                        stripe_of_row(n, k, row).unwrap(),
                        s,
                        "n={n} k={k} row={row}"
                    );
                }
            }
        }
    }

    #[test]
    fn stripe_helpers_reject_bad_input() {
        assert!(stripe_bounds(10, 0, 0).is_err());
        assert!(stripe_bounds(10, 3, 3).is_err());
        assert!(stripe_of_row(10, 0, 0).is_err());
        assert!(stripe_of_row(10, 3, 10).is_err());
    }

    #[test]
    fn split_sizes_and_determinism() {
        let ds = toy(1000);
        let (tr1, te1) = train_test_split(&ds, 0.1, 7).unwrap();
        let (tr2, te2) = train_test_split(&ds, 0.1, 7).unwrap();
        assert_eq!(tr1.num_rows(), 900);
        assert_eq!(te1.num_rows(), 100);
        assert_eq!(tr1, tr2);
        assert_eq!(te1, te2);
        // Different seed shuffles differently.
        let (tr3, _) = train_test_split(&ds, 0.1, 8).unwrap();
        assert_ne!(tr1, tr3);
    }

    #[test]
    fn split_rejects_bad_fraction() {
        assert!(train_test_split(&toy(10), 1.0, 0).is_err());
        assert!(train_test_split(&toy(10), -0.1, 0).is_err());
    }

    #[test]
    fn split_rejects_empty() {
        let ds = Dataset::empty(4);
        assert!(matches!(
            train_test_split(&ds, 0.1, 0),
            Err(DataError::EmptyDataset)
        ));
    }
}
