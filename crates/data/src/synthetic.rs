//! Seeded synthetic dataset generators.
//!
//! The paper evaluates on three high-dimensional datasets (Table 2) plus one
//! low-dimensional dataset (Appendix A.3). Two of the four (*Synthesis*,
//! *Gender*) are unavailable — one synthetic to the authors, one proprietary
//! to Tencent — so this module generates shape-compatible substitutes:
//! same row/feature/sparsity profile, with a sparse ground-truth logistic
//! signal whose informative features are spread uniformly over the whole
//! feature range. Spreading the signal matters: it is what makes prefix
//! feature subsets (Gender-10K style, Section 7.3.4) lose accuracy, which
//! Table 5 measures.
//!
//! Presets are scaled down from the paper's cluster-sized datasets to
//! laptop-sized defaults; every preset is a plain [`SparseGenConfig`] whose
//! fields can be overridden before calling [`generate`].

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Dataset, DatasetBuilder};

/// What kind of label the generator attaches to each row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LabelKind {
    /// Binary {0, 1} labels drawn from a logistic model over the ground-truth
    /// logit (the paper's gender-prediction setting).
    Binary,
    /// Continuous labels equal to the ground-truth logit plus Gaussian noise
    /// (for exercising the squared loss).
    Regression,
    /// Class-index labels in `0..classes`: each class gets its own
    /// ground-truth weight vector and the label is the argmax logit (plus
    /// label noise). For exercising the softmax objective.
    Multiclass {
        /// Number of classes (≥ 2).
        classes: u32,
    },
}

/// Configuration for the sparse synthetic generator.
#[derive(Debug, Clone)]
pub struct SparseGenConfig {
    /// Number of rows (instances).
    pub rows: usize,
    /// Number of features (dimensionality `M`).
    pub features: usize,
    /// Average nonzeros per row (the paper's `z`).
    pub avg_nnz: usize,
    /// Number of informative (nonzero-weight) features in the ground truth,
    /// spread uniformly over the feature range.
    pub informative: usize,
    /// Fraction of each row's nonzeros drawn from the informative set rather
    /// than uniformly; models the fact that predictive features are common.
    pub informative_bias: f64,
    /// Probability of flipping a binary label (label noise).
    pub label_noise: f64,
    /// Label model.
    pub label_kind: LabelKind,
    /// RNG seed; identical configs produce identical datasets.
    pub seed: u64,
}

impl SparseGenConfig {
    /// A reasonable default template used by the presets.
    pub fn new(rows: usize, features: usize, avg_nnz: usize, seed: u64) -> Self {
        Self {
            rows,
            features,
            avg_nnz,
            informative: (features / 100).clamp(10, 1000),
            informative_bias: 0.3,
            label_noise: 0.05,
            label_kind: LabelKind::Binary,
            seed,
        }
    }

    /// Overrides the row count (for scaling experiments up or down).
    pub fn with_rows(mut self, rows: usize) -> Self {
        self.rows = rows;
        self
    }

    /// Overrides the feature count.
    pub fn with_features(mut self, features: usize) -> Self {
        self.features = features;
        self
    }

    /// Overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Switches the label model.
    pub fn with_label_kind(mut self, kind: LabelKind) -> Self {
        self.label_kind = kind;
        self
    }
}

/// Shape-compatible substitute for RCV1 (paper: 0.7M rows × 47K features,
/// 76 nnz/row), scaled to laptop size.
pub fn rcv1_like(seed: u64) -> SparseGenConfig {
    SparseGenConfig::new(20_000, 4_700, 76, seed)
}

/// Shape-compatible substitute for the paper's *Synthesis* dataset
/// (50M × 100K, 100 nnz/row), scaled down.
pub fn synthesis_like(seed: u64) -> SparseGenConfig {
    SparseGenConfig::new(40_000, 10_000, 100, seed)
}

/// Shape-compatible substitute for Tencent's *Gender* dataset
/// (122M × 330K, 107 nnz/row), scaled down. Keep the feature count the
/// largest of the presets — it is the high-dimensional stress case.
pub fn gender_like(seed: u64) -> SparseGenConfig {
    SparseGenConfig::new(40_000, 33_000, 107, seed)
}

/// Shape-compatible substitute for the low-dimensional *Synthesis-2* dataset
/// of Appendix A.3 (100M × 1000), scaled down.
pub fn low_dim_like(seed: u64) -> SparseGenConfig {
    SparseGenConfig::new(60_000, 1_000, 100, seed)
}

/// Standard normal sample via Box–Muller (keeps us off non-allowlisted
/// distribution crates).
fn normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// Generates a dataset from the configuration. Deterministic in the config.
pub fn generate(config: &SparseGenConfig) -> Dataset {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let m = config.features;
    let informative = config.informative.min(m).max(1);

    // Ground-truth weights: informative feature ids spread evenly over the
    // whole range (stride placement with jitter), weights ~ N(0, 1).
    let stride = m as f64 / informative as f64;
    let mut truth: Vec<(u32, f64)> = Vec::with_capacity(informative);
    for j in 0..informative {
        let base = (j as f64 * stride) as usize;
        let jitter = if stride >= 2.0 {
            rng.random_range(0..stride as usize)
        } else {
            0
        };
        let f = (base + jitter).min(m - 1) as u32;
        truth.push((f, normal(&mut rng)));
    }
    truth.sort_unstable_by_key(|&(f, _)| f);
    truth.dedup_by_key(|&mut (f, _)| f);
    let informative_ids: Vec<u32> = truth.iter().map(|&(f, _)| f).collect();
    // Dense lookup for weights (informative is small relative to m, but a
    // dense array keeps the per-row loop branch-free). Multiclass labels get
    // one weight vector per class over the same informative ids.
    let n_logits = match config.label_kind {
        LabelKind::Multiclass { classes } => (classes as usize).max(2),
        _ => 1,
    };
    let mut weights = vec![vec![0.0f64; m]; n_logits];
    for &(f, w) in &truth {
        weights[0][f as usize] = w;
    }
    for class_weights in weights.iter_mut().skip(1) {
        for &f in &informative_ids {
            class_weights[f as usize] = normal(&mut rng);
        }
    }

    // First pass: generate rows and raw logits (one per class).
    let mut rows: Vec<(Vec<u32>, Vec<f32>)> = Vec::with_capacity(config.rows);
    let mut logits: Vec<Vec<f64>> = Vec::with_capacity(config.rows);
    let mut scratch: Vec<u32> = Vec::new();
    for _ in 0..config.rows {
        // Row sparsity ~ N(avg, avg/4), clamped to [1, m].
        let nnz_f = config.avg_nnz as f64 + normal(&mut rng) * (config.avg_nnz as f64 / 4.0);
        let nnz = (nnz_f.round().max(1.0) as usize).min(m);
        let n_inf = ((nnz as f64 * config.informative_bias) as usize).min(informative_ids.len());

        scratch.clear();
        for _ in 0..n_inf {
            scratch.push(informative_ids[rng.random_range(0..informative_ids.len())]);
        }
        for _ in n_inf..nnz {
            scratch.push(rng.random_range(0..m as u32));
        }
        scratch.sort_unstable();
        scratch.dedup();

        let mut indices = Vec::with_capacity(scratch.len());
        let mut values = Vec::with_capacity(scratch.len());
        let mut row_logits = vec![0.0f64; n_logits];
        for &f in scratch.iter() {
            // Mostly-positive feature values with a negative tail, so both
            // sides of the zero bucket are exercised.
            let v: f32 = if rng.random::<f64>() < 0.1 {
                -(rng.random::<f32>() * 1.5 + 0.05)
            } else {
                rng.random::<f32>() * 1.95 + 0.05
            };
            for (l, class_weights) in row_logits.iter_mut().zip(&weights) {
                *l += class_weights[f as usize] * v as f64;
            }
            indices.push(f);
            values.push(v);
        }
        logits.push(row_logits);
        rows.push((indices, values));
    }

    // Standardize each logit column so the labels carry a strong, learnable
    // signal regardless of the sparsity configuration.
    let n = logits.len().max(1) as f64;
    let mut means = vec![0.0f64; n_logits];
    let mut stds = vec![0.0f64; n_logits];
    for c in 0..n_logits {
        let mean = logits.iter().map(|l| l[c]).sum::<f64>() / n;
        let var = logits
            .iter()
            .map(|l| (l[c] - mean) * (l[c] - mean))
            .sum::<f64>()
            / n;
        means[c] = mean;
        stds[c] = var.sqrt().max(1e-12);
    }

    let mut builder =
        DatasetBuilder::with_capacity(m, rows.len(), rows.iter().map(|(i, _)| i.len()).sum());
    for ((indices, values), row_logits) in rows.into_iter().zip(logits) {
        let z = |c: usize| 2.0 * (row_logits[c] - means[c]) / stds[c];
        let label = match config.label_kind {
            LabelKind::Binary => {
                let p = sigmoid(z(0));
                let mut y = if rng.random::<f64>() < p { 1.0 } else { 0.0 };
                if rng.random::<f64>() < config.label_noise {
                    y = 1.0 - y;
                }
                y
            }
            LabelKind::Regression => (z(0) + 0.1 * normal(&mut rng)) as f32,
            LabelKind::Multiclass { classes } => {
                let k = (classes as usize).max(2);
                let mut best = 0usize;
                for c in 1..k {
                    if z(c) > z(best) {
                        best = c;
                    }
                }
                if rng.random::<f64>() < config.label_noise {
                    best = rng.random_range(0..k);
                }
                best as f32
            }
        };
        builder
            .push_raw(&indices, &values, label)
            .expect("generated rows are sorted and in range");
    }
    builder
        .finish()
        .expect("generator produces consistent arrays")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let cfg = SparseGenConfig::new(200, 500, 20, 7);
        assert_eq!(generate(&cfg), generate(&cfg));
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&SparseGenConfig::new(200, 500, 20, 1));
        let b = generate(&SparseGenConfig::new(200, 500, 20, 2));
        assert_ne!(a, b);
    }

    #[test]
    fn shape_matches_config() {
        let cfg = SparseGenConfig::new(500, 1000, 30, 3);
        let ds = generate(&cfg);
        assert_eq!(ds.num_rows(), 500);
        assert_eq!(ds.num_features(), 1000);
        // Average sparsity within 25% of target (dedup can shave a little).
        let z = ds.avg_nnz();
        assert!(z > 0.75 * 30.0 && z < 1.25 * 30.0, "avg nnz {z}");
    }

    #[test]
    fn binary_labels_are_binary_and_balanced() {
        let ds = generate(&SparseGenConfig::new(2000, 500, 20, 11));
        let ones = ds.labels().iter().filter(|&&y| y == 1.0).count();
        assert!(ds.labels().iter().all(|&y| y == 0.0 || y == 1.0));
        // The standardized logit is symmetric, so classes are roughly even.
        assert!(ones > 600 && ones < 1400, "ones = {ones}");
    }

    #[test]
    fn regression_labels_are_continuous() {
        let cfg = SparseGenConfig::new(500, 200, 10, 5).with_label_kind(LabelKind::Regression);
        let ds = generate(&cfg);
        let distinct: std::collections::HashSet<u32> =
            ds.labels().iter().map(|y| y.to_bits()).collect();
        assert!(distinct.len() > 400);
    }

    #[test]
    fn multiclass_labels_cover_all_classes() {
        let cfg = SparseGenConfig::new(3_000, 300, 15, 17)
            .with_label_kind(LabelKind::Multiclass { classes: 4 });
        let ds = generate(&cfg);
        let mut counts = [0usize; 4];
        for &y in ds.labels() {
            assert!(
                y >= 0.0 && y.fract() == 0.0 && (y as usize) < 4,
                "bad label {y}"
            );
            counts[y as usize] += 1;
        }
        // Argmax over standardized symmetric logits -> roughly balanced.
        for (c, &count) in counts.iter().enumerate() {
            assert!(count > 300, "class {c} underrepresented: {counts:?}");
        }
    }

    #[test]
    fn multiclass_is_deterministic() {
        let cfg = SparseGenConfig::new(200, 100, 10, 5)
            .with_label_kind(LabelKind::Multiclass { classes: 3 });
        assert_eq!(generate(&cfg), generate(&cfg));
    }

    #[test]
    fn values_include_negatives() {
        let ds = generate(&SparseGenConfig::new(1000, 300, 20, 9));
        let negs = (0..ds.num_rows())
            .flat_map(|i| ds.row(i).values().to_vec())
            .filter(|&v| v < 0.0)
            .count();
        assert!(negs > 0, "expected some negative feature values");
    }

    #[test]
    fn presets_have_paper_shapes() {
        let g = gender_like(0);
        assert_eq!(g.avg_nnz, 107);
        assert!(g.features > synthesis_like(0).features);
        assert_eq!(low_dim_like(0).features, 1_000);
        assert_eq!(rcv1_like(0).avg_nnz, 76);
    }

    #[test]
    fn informative_signal_is_learnable_by_single_feature() {
        // The most-informative feature should correlate with the label:
        // a sanity check that the generator actually embeds signal.
        let mut cfg = SparseGenConfig::new(4000, 100, 30, 13);
        cfg.informative = 5;
        cfg.informative_bias = 0.8;
        cfg.label_noise = 0.0;
        let ds = generate(&cfg);
        // Find the feature with max |corr| against labels.
        let mut best = 0.0f64;
        let stats = ds.column_stats();
        for (f, stat) in stats.iter().enumerate() {
            if stat.nnz < 100 {
                continue;
            }
            let mut sum_xy = 0.0;
            let mut sum_x = 0.0;
            let mut sum_x2 = 0.0;
            let mut sum_y = 0.0;
            let mut sum_y2 = 0.0;
            let n = ds.num_rows() as f64;
            for (row, y) in ds.iter_rows() {
                let x = row.get(f as u32) as f64;
                let y = y as f64;
                sum_xy += x * y;
                sum_x += x;
                sum_x2 += x * x;
                sum_y += y;
                sum_y2 += y * y;
            }
            let cov = sum_xy / n - (sum_x / n) * (sum_y / n);
            let vx = sum_x2 / n - (sum_x / n) * (sum_x / n);
            let vy = sum_y2 / n - (sum_y / n) * (sum_y / n);
            if vx > 0.0 && vy > 0.0 {
                best = best.max((cov / (vx.sqrt() * vy.sqrt())).abs());
            }
        }
        assert!(
            best > 0.15,
            "max |corr| {best} too weak — no embedded signal"
        );
    }
}
