use std::fmt;

/// Errors produced while constructing or parsing datasets.
#[derive(Debug)]
pub enum DataError {
    /// A feature index is out of range for the declared dimensionality.
    FeatureOutOfRange {
        /// The offending feature index.
        index: u32,
        /// The declared number of features.
        num_features: usize,
    },
    /// Sparse indices were not strictly increasing.
    UnsortedIndices {
        /// Position in the index array where order breaks.
        position: usize,
    },
    /// Parallel arrays (indices/values, rows/labels) have mismatched lengths.
    LengthMismatch {
        /// Human-readable description of the mismatched pair.
        what: &'static str,
        /// Left length.
        left: usize,
        /// Right length.
        right: usize,
    },
    /// A LibSVM line could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of what failed.
        message: String,
    },
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// An operation that requires a non-empty dataset got an empty one.
    EmptyDataset,
    /// Invalid configuration value (e.g. zero partitions).
    InvalidConfig(String),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::FeatureOutOfRange {
                index,
                num_features,
            } => write!(
                f,
                "feature index {index} out of range for {num_features} features"
            ),
            DataError::UnsortedIndices { position } => {
                write!(
                    f,
                    "sparse indices not strictly increasing at position {position}"
                )
            }
            DataError::LengthMismatch { what, left, right } => {
                write!(f, "length mismatch in {what}: {left} vs {right}")
            }
            DataError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            DataError::Io(e) => write!(f, "I/O error: {e}"),
            DataError::EmptyDataset => write!(f, "operation requires a non-empty dataset"),
            DataError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for DataError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DataError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DataError {
    fn from(e: std::io::Error) -> Self {
        DataError::Io(e)
    }
}
