use crate::{DataError, SparseInstance};

/// A borrowed view of one row of a [`Dataset`]: the nonzero entries of a
/// sparse instance, without copying.
#[derive(Debug, Clone, Copy)]
pub struct RowView<'a> {
    indices: &'a [u32],
    values: &'a [f32],
}

impl<'a> RowView<'a> {
    /// Sorted feature indices of the nonzero entries.
    pub fn indices(&self) -> &'a [u32] {
        self.indices
    }

    /// Values parallel to [`Self::indices`].
    pub fn values(&self) -> &'a [f32] {
        self.values
    }

    /// Number of nonzero entries in this row.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Iterates `(feature, value)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, f32)> + 'a {
        self.indices
            .iter()
            .copied()
            .zip(self.values.iter().copied())
    }

    /// Value of feature `f`, or `0.0` when absent.
    pub fn get(&self, f: u32) -> f32 {
        match self.indices.binary_search(&f) {
            Ok(pos) => self.values[pos],
            Err(_) => 0.0,
        }
    }

    /// Copies this view into an owned [`SparseInstance`].
    pub fn to_instance(&self) -> SparseInstance {
        SparseInstance::new(self.indices.to_vec(), self.values.to_vec())
            .expect("dataset rows are validated on insertion")
    }
}

/// Per-feature summary statistics, used for sketch seeding and sanity checks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ColumnStats {
    /// Smallest nonzero value observed (or `f32::INFINITY` if the column is
    /// entirely zero).
    pub min: f32,
    /// Largest nonzero value observed (or `f32::NEG_INFINITY`).
    pub max: f32,
    /// Number of rows with a nonzero entry in this column.
    pub nnz: usize,
}

impl Default for ColumnStats {
    fn default() -> Self {
        Self {
            min: f32::INFINITY,
            max: f32::NEG_INFINITY,
            nnz: 0,
        }
    }
}

/// A labelled sparse dataset in CSR (compressed sparse row) layout.
///
/// Rows are training instances, columns are features. The CSR layout keeps
/// every worker's shard in three flat arrays, which is what makes the
/// sparsity-aware histogram pass of Algorithm 2 a linear scan.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    indptr: Vec<usize>,
    indices: Vec<u32>,
    values: Vec<f32>,
    labels: Vec<f32>,
    num_features: usize,
}

impl Dataset {
    /// An empty dataset with the given dimensionality.
    pub fn empty(num_features: usize) -> Self {
        Self {
            indptr: vec![0],
            indices: Vec::new(),
            values: Vec::new(),
            labels: Vec::new(),
            num_features,
        }
    }

    /// Builds a dataset from owned instances and labels.
    pub fn from_instances(
        instances: &[SparseInstance],
        labels: Vec<f32>,
        num_features: usize,
    ) -> Result<Self, DataError> {
        if instances.len() != labels.len() {
            return Err(DataError::LengthMismatch {
                what: "instances/labels",
                left: instances.len(),
                right: labels.len(),
            });
        }
        let mut builder = DatasetBuilder::new(num_features);
        for (inst, &label) in instances.iter().zip(&labels) {
            builder.push_instance(inst, label)?;
        }
        builder.finish()
    }

    /// Number of rows (instances).
    pub fn num_rows(&self) -> usize {
        self.labels.len()
    }

    /// Declared dimensionality (number of features, including all-zero ones).
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// Total number of stored nonzero entries.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Average nonzeros per row (the paper's `z`).
    pub fn avg_nnz(&self) -> f64 {
        if self.num_rows() == 0 {
            0.0
        } else {
            self.nnz() as f64 / self.num_rows() as f64
        }
    }

    /// Fraction of the dense matrix that is nonzero.
    pub fn density(&self) -> f64 {
        let cells = self.num_rows() * self.num_features;
        if cells == 0 {
            0.0
        } else {
            self.nnz() as f64 / cells as f64
        }
    }

    /// Borrowed view of row `i`.
    pub fn row(&self, i: usize) -> RowView<'_> {
        let (lo, hi) = (self.indptr[i], self.indptr[i + 1]);
        RowView {
            indices: &self.indices[lo..hi],
            values: &self.values[lo..hi],
        }
    }

    /// Label of row `i`.
    pub fn label(&self, i: usize) -> f32 {
        self.labels[i]
    }

    /// All labels.
    pub fn labels(&self) -> &[f32] {
        &self.labels
    }

    /// Iterates `(row view, label)` over all rows.
    pub fn iter_rows(&self) -> impl Iterator<Item = (RowView<'_>, f32)> {
        (0..self.num_rows()).map(move |i| (self.row(i), self.label(i)))
    }

    /// Restricts the dataset to the first `m` features, dropping entries with
    /// larger indices. This is exactly how the paper derives Gender-10K /
    /// Gender-100K from the full Gender dataset (Section 7.3.4).
    pub fn restrict_features(&self, m: usize) -> Self {
        let mut builder = DatasetBuilder::new(m);
        for (row, label) in self.iter_rows() {
            let cut = row.indices.partition_point(|&f| (f as usize) < m);
            builder
                .push_raw(&row.indices[..cut], &row.values[..cut], label)
                .expect("restricting a valid dataset cannot fail");
        }
        builder
            .finish()
            .expect("restricting a valid dataset cannot fail")
    }

    /// Copies the selected rows into a new dataset (used for partitioning and
    /// train/test splits). Row order follows `rows`.
    pub fn subset(&self, rows: &[usize]) -> Self {
        let mut builder = DatasetBuilder::new(self.num_features);
        for &i in rows {
            let row = self.row(i);
            builder
                .push_raw(row.indices, row.values, self.label(i))
                .expect("subset of a valid dataset cannot fail");
        }
        builder
            .finish()
            .expect("subset of a valid dataset cannot fail")
    }

    /// Per-column min/max/nnz statistics over nonzero entries.
    pub fn column_stats(&self) -> Vec<ColumnStats> {
        let mut stats = vec![ColumnStats::default(); self.num_features];
        for (&f, &v) in self.indices.iter().zip(&self.values) {
            let s = &mut stats[f as usize];
            s.min = s.min.min(v);
            s.max = s.max.max(v);
            s.nnz += 1;
        }
        stats
    }

    /// Approximate in-memory footprint in bytes (CSR arrays + labels).
    pub fn memory_bytes(&self) -> usize {
        self.indptr.len() * std::mem::size_of::<usize>()
            + self.indices.len() * std::mem::size_of::<u32>()
            + self.values.len() * std::mem::size_of::<f32>()
            + self.labels.len() * std::mem::size_of::<f32>()
    }
}

/// Incremental [`Dataset`] constructor.
#[derive(Debug)]
pub struct DatasetBuilder {
    indptr: Vec<usize>,
    indices: Vec<u32>,
    values: Vec<f32>,
    labels: Vec<f32>,
    num_features: usize,
}

impl DatasetBuilder {
    /// Starts an empty builder for `num_features`-dimensional data.
    pub fn new(num_features: usize) -> Self {
        Self {
            indptr: vec![0],
            indices: Vec::new(),
            values: Vec::new(),
            labels: Vec::new(),
            num_features,
        }
    }

    /// Pre-allocates for an expected number of rows and nonzeros.
    pub fn with_capacity(num_features: usize, rows: usize, nnz: usize) -> Self {
        let mut b = Self::new(num_features);
        b.indptr.reserve(rows);
        b.labels.reserve(rows);
        b.indices.reserve(nnz);
        b.values.reserve(nnz);
        b
    }

    /// Appends a validated sparse instance.
    pub fn push_instance(&mut self, inst: &SparseInstance, label: f32) -> Result<(), DataError> {
        self.push_raw(inst.indices(), inst.values(), label)
    }

    /// Appends a row from raw parallel slices, validating order and range.
    pub fn push_raw(
        &mut self,
        indices: &[u32],
        values: &[f32],
        label: f32,
    ) -> Result<(), DataError> {
        if indices.len() != values.len() {
            return Err(DataError::LengthMismatch {
                what: "indices/values",
                left: indices.len(),
                right: values.len(),
            });
        }
        for (pos, w) in indices.windows(2).enumerate() {
            if w[0] >= w[1] {
                return Err(DataError::UnsortedIndices { position: pos + 1 });
            }
        }
        if let Some(&last) = indices.last() {
            if last as usize >= self.num_features {
                return Err(DataError::FeatureOutOfRange {
                    index: last,
                    num_features: self.num_features,
                });
            }
        }
        for (&i, &v) in indices.iter().zip(values) {
            if v != 0.0 {
                self.indices.push(i);
                self.values.push(v);
            }
        }
        self.indptr.push(self.indices.len());
        self.labels.push(label);
        Ok(())
    }

    /// Number of rows accumulated so far.
    pub fn num_rows(&self) -> usize {
        self.labels.len()
    }

    /// Finalizes the dataset.
    pub fn finish(self) -> Result<Dataset, DataError> {
        Ok(Dataset {
            indptr: self.indptr,
            indices: self.indices,
            values: self.values,
            labels: self.labels,
            num_features: self.num_features,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        // 3 rows, 5 features.
        let insts = vec![
            SparseInstance::new(vec![0, 2], vec![1.0, 2.0]).unwrap(),
            SparseInstance::new(vec![1], vec![-1.0]).unwrap(),
            SparseInstance::new(vec![2, 4], vec![0.5, 3.0]).unwrap(),
        ];
        Dataset::from_instances(&insts, vec![1.0, 0.0, 1.0], 5).unwrap()
    }

    #[test]
    fn basic_accessors() {
        let ds = toy();
        assert_eq!(ds.num_rows(), 3);
        assert_eq!(ds.num_features(), 5);
        assert_eq!(ds.nnz(), 5);
        assert!((ds.avg_nnz() - 5.0 / 3.0).abs() < 1e-12);
        assert!((ds.density() - 5.0 / 15.0).abs() < 1e-12);
        assert_eq!(ds.row(0).get(2), 2.0);
        assert_eq!(ds.row(1).get(0), 0.0);
        assert_eq!(ds.label(2), 1.0);
    }

    #[test]
    fn builder_rejects_out_of_range() {
        let mut b = DatasetBuilder::new(3);
        let err = b.push_raw(&[5], &[1.0], 0.0).unwrap_err();
        assert!(matches!(
            err,
            DataError::FeatureOutOfRange {
                index: 5,
                num_features: 3
            }
        ));
    }

    #[test]
    fn builder_rejects_unsorted() {
        let mut b = DatasetBuilder::new(10);
        let err = b.push_raw(&[4, 2], &[1.0, 1.0], 0.0).unwrap_err();
        assert!(matches!(err, DataError::UnsortedIndices { .. }));
    }

    #[test]
    fn from_instances_rejects_label_mismatch() {
        let insts = vec![SparseInstance::empty()];
        let err = Dataset::from_instances(&insts, vec![], 1).unwrap_err();
        assert!(matches!(err, DataError::LengthMismatch { .. }));
    }

    #[test]
    fn restrict_features_drops_high_indices() {
        let ds = toy().restrict_features(2);
        assert_eq!(ds.num_features(), 2);
        assert_eq!(ds.num_rows(), 3);
        assert_eq!(ds.row(0).nnz(), 1); // feature 2 dropped
        assert_eq!(ds.row(2).nnz(), 0); // features 2, 4 dropped
        assert_eq!(ds.labels(), toy().labels());
    }

    #[test]
    fn subset_preserves_rows_in_order() {
        let ds = toy();
        let sub = ds.subset(&[2, 0]);
        assert_eq!(sub.num_rows(), 2);
        assert_eq!(sub.label(0), 1.0);
        assert_eq!(sub.row(0).get(4), 3.0);
        assert_eq!(sub.row(1).get(0), 1.0);
    }

    #[test]
    fn column_stats_cover_nonzeros() {
        let stats = toy().column_stats();
        assert_eq!(stats[2].nnz, 2);
        assert_eq!(stats[2].min, 0.5);
        assert_eq!(stats[2].max, 2.0);
        assert_eq!(stats[3].nnz, 0);
    }

    #[test]
    fn zero_values_are_dropped_on_push() {
        let mut b = DatasetBuilder::new(4);
        b.push_raw(&[0, 1, 2], &[1.0, 0.0, 2.0], 0.0).unwrap();
        let ds = b.finish().unwrap();
        assert_eq!(ds.nnz(), 2);
    }

    #[test]
    fn empty_dataset() {
        let ds = Dataset::empty(7);
        assert_eq!(ds.num_rows(), 0);
        assert_eq!(ds.num_features(), 7);
        assert_eq!(ds.avg_nnz(), 0.0);
    }
}
