use crate::DataError;

/// A sparse training instance: sorted `(feature index, value)` pairs.
///
/// Only nonzero features are stored (Section 2.1 of the paper). Indices are
/// strictly increasing and every stored value is nonzero; both invariants are
/// enforced by [`SparseInstance::new`].
#[derive(Debug, Clone, PartialEq)]
pub struct SparseInstance {
    indices: Vec<u32>,
    values: Vec<f32>,
}

impl SparseInstance {
    /// Builds a sparse instance, validating that indices are strictly
    /// increasing. Zero-valued entries are dropped.
    pub fn new(indices: Vec<u32>, values: Vec<f32>) -> Result<Self, DataError> {
        if indices.len() != values.len() {
            return Err(DataError::LengthMismatch {
                what: "indices/values",
                left: indices.len(),
                right: values.len(),
            });
        }
        for (pos, w) in indices.windows(2).enumerate() {
            if w[0] >= w[1] {
                return Err(DataError::UnsortedIndices { position: pos + 1 });
            }
        }
        let (indices, values) = indices
            .into_iter()
            .zip(values)
            .filter(|&(_, v)| v != 0.0)
            .unzip();
        Ok(Self { indices, values })
    }

    /// Builds from possibly-unsorted pairs, sorting (and validating
    /// uniqueness) on the way in.
    pub fn from_pairs(mut pairs: Vec<(u32, f32)>) -> Result<Self, DataError> {
        pairs.sort_unstable_by_key(|&(i, _)| i);
        let (indices, values): (Vec<u32>, Vec<f32>) = pairs.into_iter().unzip();
        Self::new(indices, values)
    }

    /// An instance with no nonzero features.
    pub fn empty() -> Self {
        Self {
            indices: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Number of stored (nonzero) entries.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Sorted feature indices of the nonzero entries.
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// Values parallel to [`Self::indices`].
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Iterates `(feature, value)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, f32)> + '_ {
        self.indices
            .iter()
            .copied()
            .zip(self.values.iter().copied())
    }

    /// Value of feature `f`, or `0.0` when absent (binary search).
    pub fn get(&self, f: u32) -> f32 {
        match self.indices.binary_search(&f) {
            Ok(pos) => self.values[pos],
            Err(_) => 0.0,
        }
    }

    /// Converts to a dense vector of length `num_features`.
    pub fn to_dense(&self, num_features: usize) -> DenseInstance {
        let mut v = vec![0.0; num_features];
        for (i, x) in self.iter() {
            v[i as usize] = x;
        }
        DenseInstance::new(v)
    }
}

/// A dense training instance: one value per feature.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseInstance {
    values: Vec<f32>,
}

impl DenseInstance {
    /// Wraps a dense value vector.
    pub fn new(values: Vec<f32>) -> Self {
        Self { values }
    }

    /// Number of features (including zeros).
    pub fn num_features(&self) -> usize {
        self.values.len()
    }

    /// The dense value array.
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Converts to the sparse representation, dropping zeros.
    pub fn to_sparse(&self) -> SparseInstance {
        let (indices, values) = self
            .values
            .iter()
            .enumerate()
            .filter(|&(_, &v)| v != 0.0)
            .map(|(i, &v)| (i as u32, v))
            .unzip();
        SparseInstance { indices, values }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rejects_unsorted() {
        let err = SparseInstance::new(vec![3, 1], vec![1.0, 2.0]).unwrap_err();
        assert!(matches!(err, DataError::UnsortedIndices { position: 1 }));
    }

    #[test]
    fn new_rejects_duplicates() {
        let err = SparseInstance::new(vec![2, 2], vec![1.0, 2.0]).unwrap_err();
        assert!(matches!(err, DataError::UnsortedIndices { .. }));
    }

    #[test]
    fn new_rejects_length_mismatch() {
        let err = SparseInstance::new(vec![1], vec![1.0, 2.0]).unwrap_err();
        assert!(matches!(err, DataError::LengthMismatch { .. }));
    }

    #[test]
    fn new_drops_explicit_zeros() {
        let inst = SparseInstance::new(vec![0, 1, 2], vec![1.0, 0.0, 3.0]).unwrap();
        assert_eq!(inst.nnz(), 2);
        assert_eq!(inst.indices(), &[0, 2]);
    }

    #[test]
    fn from_pairs_sorts() {
        let inst = SparseInstance::from_pairs(vec![(5, 1.0), (2, 2.0)]).unwrap();
        assert_eq!(inst.indices(), &[2, 5]);
        assert_eq!(inst.values(), &[2.0, 1.0]);
    }

    #[test]
    fn get_returns_zero_for_missing() {
        let inst = SparseInstance::new(vec![1, 7], vec![0.5, -0.5]).unwrap();
        assert_eq!(inst.get(1), 0.5);
        assert_eq!(inst.get(7), -0.5);
        assert_eq!(inst.get(3), 0.0);
    }

    #[test]
    fn dense_sparse_roundtrip() {
        let dense = DenseInstance::new(vec![0.0, 1.5, 0.0, -2.0]);
        let sparse = dense.to_sparse();
        assert_eq!(sparse.nnz(), 2);
        assert_eq!(sparse.to_dense(4), dense);
    }

    #[test]
    fn empty_instance() {
        let inst = SparseInstance::empty();
        assert_eq!(inst.nnz(), 0);
        assert_eq!(inst.get(0), 0.0);
    }
}
