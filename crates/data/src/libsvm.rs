//! LibSVM text-format reader and writer.
//!
//! The format is one instance per line: `label idx:value idx:value ...`.
//! RCV1 and most public classification datasets the paper evaluates ship in
//! this format. Indices in LibSVM files are conventionally 1-based; this
//! module converts to 0-based internal indices by default.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::{DataError, Dataset, DatasetBuilder};

/// Parsing options for LibSVM input.
#[derive(Debug, Clone, Copy)]
pub struct LibsvmOptions {
    /// Whether feature indices in the file start at 1 (the LibSVM
    /// convention). When `true`, index `i` in the file becomes `i - 1`.
    pub one_based: bool,
    /// Dimensionality override. When `None`, the dimensionality is the
    /// largest index seen plus one.
    pub num_features: Option<usize>,
    /// Map labels to {0, 1}: any label `<= 0` (including `-1`) becomes `0.0`,
    /// anything else `1.0`. Matches the binary-classification setting of the
    /// paper's evaluation.
    pub binarize_labels: bool,
}

impl Default for LibsvmOptions {
    fn default() -> Self {
        Self {
            one_based: true,
            num_features: None,
            binarize_labels: true,
        }
    }
}

/// Reads a LibSVM-format dataset from any reader.
pub fn read_libsvm<R: Read>(reader: R, opts: LibsvmOptions) -> Result<Dataset, DataError> {
    let reader = BufReader::new(reader);
    let mut rows: Vec<(Vec<u32>, Vec<f32>, f32)> = Vec::new();
    let mut max_index: usize = 0;

    for (line_no, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_ascii_whitespace();
        let label_tok = parts.next().ok_or_else(|| DataError::Parse {
            line: line_no + 1,
            message: "missing label".into(),
        })?;
        let raw_label: f32 = label_tok.parse().map_err(|_| DataError::Parse {
            line: line_no + 1,
            message: format!("bad label {label_tok:?}"),
        })?;
        let label = if opts.binarize_labels {
            if raw_label <= 0.0 {
                0.0
            } else {
                1.0
            }
        } else {
            raw_label
        };

        let mut indices = Vec::new();
        let mut values = Vec::new();
        for tok in parts {
            let (idx_str, val_str) = tok.split_once(':').ok_or_else(|| DataError::Parse {
                line: line_no + 1,
                message: format!("expected idx:value, got {tok:?}"),
            })?;
            let raw_idx: u64 = idx_str.parse().map_err(|_| DataError::Parse {
                line: line_no + 1,
                message: format!("bad index {idx_str:?}"),
            })?;
            let idx = if opts.one_based {
                raw_idx.checked_sub(1).ok_or_else(|| DataError::Parse {
                    line: line_no + 1,
                    message: "index 0 in a 1-based file".into(),
                })?
            } else {
                raw_idx
            };
            let value: f32 = val_str.parse().map_err(|_| DataError::Parse {
                line: line_no + 1,
                message: format!("bad value {val_str:?}"),
            })?;
            max_index = max_index.max(idx as usize);
            indices.push(idx as u32);
            values.push(value);
        }
        rows.push((indices, values, label));
    }

    let dim_seen = if rows.iter().all(|(i, _, _)| i.is_empty()) {
        0
    } else {
        max_index + 1
    };
    let num_features = match opts.num_features {
        Some(m) => {
            if dim_seen > m {
                return Err(DataError::FeatureOutOfRange {
                    index: max_index as u32,
                    num_features: m,
                });
            }
            m
        }
        None => dim_seen,
    };

    let mut builder = DatasetBuilder::with_capacity(
        num_features,
        rows.len(),
        rows.iter().map(|(i, _, _)| i.len()).sum(),
    );
    for (line_no, (mut indices, mut values, label)) in rows.into_iter().enumerate() {
        // LibSVM files are usually sorted; tolerate unsorted lines by sorting.
        if indices.windows(2).any(|w| w[0] >= w[1]) {
            let mut pairs: Vec<(u32, f32)> = indices
                .iter()
                .copied()
                .zip(values.iter().copied())
                .collect();
            pairs.sort_unstable_by_key(|&(i, _)| i);
            pairs.dedup_by_key(|&mut (i, _)| i);
            indices = pairs.iter().map(|&(i, _)| i).collect();
            values = pairs.iter().map(|&(_, v)| v).collect();
        }
        builder
            .push_raw(&indices, &values, label)
            .map_err(|e| DataError::Parse {
                line: line_no + 1,
                message: e.to_string(),
            })?;
    }
    builder.finish()
}

/// Reads a LibSVM-format dataset from a file path.
pub fn read_libsvm_file<P: AsRef<Path>>(
    path: P,
    opts: LibsvmOptions,
) -> Result<Dataset, DataError> {
    let file = std::fs::File::open(path)?;
    read_libsvm(file, opts)
}

/// Writes a dataset in LibSVM format (1-based indices).
pub fn write_libsvm<W: Write>(writer: W, dataset: &Dataset) -> Result<(), DataError> {
    let mut w = BufWriter::new(writer);
    for (row, label) in dataset.iter_rows() {
        write!(w, "{label}")?;
        for (f, v) in row.iter() {
            write!(w, " {}:{}", f + 1, v)?;
        }
        writeln!(w)?;
    }
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
+1 1:0.5 3:1.5
-1 2:2.0
# comment line

0 1:1.0 4:4.0
";

    #[test]
    fn parses_sample() {
        let ds = read_libsvm(SAMPLE.as_bytes(), LibsvmOptions::default()).unwrap();
        assert_eq!(ds.num_rows(), 3);
        assert_eq!(ds.num_features(), 4); // max index 4 -> 0-based 3 -> dim 4
        assert_eq!(ds.label(0), 1.0);
        assert_eq!(ds.label(1), 0.0); // -1 binarized
        assert_eq!(ds.label(2), 0.0);
        assert_eq!(ds.row(0).get(0), 0.5);
        assert_eq!(ds.row(0).get(2), 1.5);
        assert_eq!(ds.row(2).get(3), 4.0);
    }

    #[test]
    fn respects_feature_override() {
        let opts = LibsvmOptions {
            num_features: Some(10),
            ..Default::default()
        };
        let ds = read_libsvm(SAMPLE.as_bytes(), opts).unwrap();
        assert_eq!(ds.num_features(), 10);
    }

    #[test]
    fn rejects_too_small_override() {
        let opts = LibsvmOptions {
            num_features: Some(2),
            ..Default::default()
        };
        assert!(read_libsvm(SAMPLE.as_bytes(), opts).is_err());
    }

    #[test]
    fn keeps_raw_labels_when_not_binarizing() {
        let opts = LibsvmOptions {
            binarize_labels: false,
            ..Default::default()
        };
        let ds = read_libsvm("2.5 1:1.0\n".as_bytes(), opts).unwrap();
        assert_eq!(ds.label(0), 2.5);
    }

    #[test]
    fn zero_based_indices() {
        let opts = LibsvmOptions {
            one_based: false,
            ..Default::default()
        };
        let ds = read_libsvm("1 0:1.0 2:2.0\n".as_bytes(), opts).unwrap();
        assert_eq!(ds.num_features(), 3);
        assert_eq!(ds.row(0).get(0), 1.0);
    }

    #[test]
    fn rejects_index_zero_in_one_based_file() {
        let err = read_libsvm("1 0:1.0\n".as_bytes(), LibsvmOptions::default()).unwrap_err();
        assert!(matches!(err, DataError::Parse { line: 1, .. }));
    }

    #[test]
    fn rejects_malformed_pair() {
        let err = read_libsvm("1 nonsense\n".as_bytes(), LibsvmOptions::default()).unwrap_err();
        assert!(matches!(err, DataError::Parse { .. }));
    }

    #[test]
    fn roundtrip_write_read() {
        let ds = read_libsvm(SAMPLE.as_bytes(), LibsvmOptions::default()).unwrap();
        let mut buf = Vec::new();
        write_libsvm(&mut buf, &ds).unwrap();
        let opts = LibsvmOptions {
            num_features: Some(ds.num_features()),
            ..Default::default()
        };
        let ds2 = read_libsvm(buf.as_slice(), opts).unwrap();
        assert_eq!(ds, ds2);
    }

    #[test]
    fn tolerates_unsorted_line() {
        let ds = read_libsvm("1 3:3.0 1:1.0\n".as_bytes(), LibsvmOptions::default()).unwrap();
        assert_eq!(ds.row(0).indices(), &[0, 2]);
    }
}
