//! Dataset layer for the DimBoost reproduction.
//!
//! This crate provides everything the training system needs to get data into
//! memory and onto workers:
//!
//! * [`SparseInstance`] / [`DenseInstance`] — single training rows
//!   (Section 2.1 of the paper).
//! * [`Dataset`] — a CSR-backed, row-partitionable collection of instances.
//! * [`libsvm`] — reader/writer for the LibSVM text format used by the
//!   public datasets the paper evaluates (e.g. RCV1).
//! * [`synthetic`] — seeded generators reproducing the *shape* (rows,
//!   features, sparsity, signal spread) of the paper's datasets: RCV1,
//!   Synthesis, Gender, and the low-dimensional Synthesis-2.
//! * [`partition`] — row partitioning across workers and train/test splits.
//!
//! All randomness is seeded (`StdRng`), so every generator and split is
//! reproducible bit-for-bit.

#[cfg_attr(not(test), deny(clippy::unwrap_used))]
pub mod csv;
mod dataset;
mod error;
mod instance;
#[cfg_attr(not(test), deny(clippy::unwrap_used))]
pub mod libsvm;
pub mod partition;
pub mod synthetic;

pub use dataset::{ColumnStats, Dataset, DatasetBuilder, RowView};
pub use error::DataError;
pub use instance::{DenseInstance, SparseInstance};
