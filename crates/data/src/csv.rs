//! CSV reader for dense tabular data.
//!
//! LibSVM covers the sparse public benchmarks; plenty of real tabular data
//! arrives as CSV instead. This reader parses numeric CSV into the sparse
//! [`Dataset`] (zeros are simply not stored, so dense CSV columns with many
//! zeros benefit from the sparsity-aware pipeline automatically).

use std::io::{BufRead, BufReader, Read};
use std::path::Path;

use crate::{DataError, Dataset, DatasetBuilder};

/// Parsing options for CSV input.
#[derive(Debug, Clone, Copy)]
pub struct CsvOptions {
    /// Field delimiter.
    pub delimiter: char,
    /// Skip the first non-empty line.
    pub has_header: bool,
    /// Zero-based column holding the label; every other column is a feature
    /// (in file order).
    pub label_column: usize,
    /// Map labels to {0, 1}: anything `<= 0` becomes `0.0`.
    pub binarize_labels: bool,
}

impl Default for CsvOptions {
    fn default() -> Self {
        Self {
            delimiter: ',',
            has_header: true,
            label_column: 0,
            binarize_labels: true,
        }
    }
}

/// Reads a numeric CSV into a dataset.
///
/// Every row must have the same number of fields; the label column is
/// removed from the feature space, so a file with `c` columns yields
/// `c − 1` features.
pub fn read_csv<R: Read>(reader: R, opts: CsvOptions) -> Result<Dataset, DataError> {
    let reader = BufReader::new(reader);
    let mut builder: Option<DatasetBuilder> = None;
    let mut expected_fields: usize = 0;
    let mut header_skipped = !opts.has_header;

    for (line_no, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if !header_skipped {
            header_skipped = true;
            continue;
        }
        let fields: Vec<&str> = line.split(opts.delimiter).map(str::trim).collect();
        if opts.label_column >= fields.len() {
            return Err(DataError::Parse {
                line: line_no + 1,
                message: format!(
                    "label column {} out of {} fields",
                    opts.label_column,
                    fields.len()
                ),
            });
        }
        if builder.is_none() {
            // First data row fixes the schema.
            expected_fields = fields.len();
        } else if fields.len() != expected_fields {
            return Err(DataError::Parse {
                line: line_no + 1,
                message: format!("expected {expected_fields} fields, got {}", fields.len()),
            });
        }
        let b = builder.get_or_insert_with(|| DatasetBuilder::new(expected_fields - 1));

        let raw_label: f32 = fields[opts.label_column]
            .parse()
            .map_err(|_| DataError::Parse {
                line: line_no + 1,
                message: format!("bad label {:?}", fields[opts.label_column]),
            })?;
        let label = if opts.binarize_labels {
            if raw_label <= 0.0 {
                0.0
            } else {
                1.0
            }
        } else {
            raw_label
        };

        let mut indices = Vec::new();
        let mut values = Vec::new();
        let mut feature = 0u32;
        for (col, field) in fields.iter().enumerate() {
            if col == opts.label_column {
                continue;
            }
            let v: f32 = field.parse().map_err(|_| DataError::Parse {
                line: line_no + 1,
                message: format!("bad value {field:?} in column {col}"),
            })?;
            if v != 0.0 {
                indices.push(feature);
                values.push(v);
            }
            feature += 1;
        }
        b.push_raw(&indices, &values, label)
            .map_err(|e| DataError::Parse {
                line: line_no + 1,
                message: e.to_string(),
            })?;
    }

    match builder {
        Some(b) => b.finish(),
        None => Err(DataError::EmptyDataset),
    }
}

/// Reads a numeric CSV file into a dataset.
pub fn read_csv_file<P: AsRef<Path>>(path: P, opts: CsvOptions) -> Result<Dataset, DataError> {
    read_csv(std::fs::File::open(path)?, opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
label,f1,f2,f3
1,0.5,0,2.0
0,0,1.5,0
1,-1,0,0.25
";

    #[test]
    fn parses_with_header() {
        let ds = read_csv(SAMPLE.as_bytes(), CsvOptions::default()).unwrap();
        assert_eq!(ds.num_rows(), 3);
        assert_eq!(ds.num_features(), 3);
        assert_eq!(ds.labels(), &[1.0, 0.0, 1.0]);
        assert_eq!(ds.row(0).get(0), 0.5);
        assert_eq!(ds.row(0).get(1), 0.0); // zero dropped
        assert_eq!(ds.row(0).get(2), 2.0);
        assert_eq!(ds.row(2).get(0), -1.0);
        assert_eq!(ds.nnz(), 5);
    }

    #[test]
    fn label_column_in_the_middle() {
        let text = "a,y,b\n1.0,1,2.0\n3.0,-1,4.0\n";
        let opts = CsvOptions {
            label_column: 1,
            ..Default::default()
        };
        let ds = read_csv(text.as_bytes(), opts).unwrap();
        assert_eq!(ds.num_features(), 2);
        assert_eq!(ds.labels(), &[1.0, 0.0]);
        assert_eq!(ds.row(1).get(0), 3.0);
        assert_eq!(ds.row(1).get(1), 4.0);
    }

    #[test]
    fn no_header_and_semicolons() {
        let text = "1;2.5;0\n0;0;3.5\n";
        let opts = CsvOptions {
            has_header: false,
            delimiter: ';',
            ..Default::default()
        };
        let ds = read_csv(text.as_bytes(), opts).unwrap();
        assert_eq!(ds.num_rows(), 2);
        assert_eq!(ds.row(0).get(0), 2.5);
        assert_eq!(ds.row(1).get(1), 3.5);
    }

    #[test]
    fn raw_labels_kept_when_not_binarizing() {
        let text = "y,x\n2.5,1\n-3,2\n";
        let opts = CsvOptions {
            binarize_labels: false,
            ..Default::default()
        };
        let ds = read_csv(text.as_bytes(), opts).unwrap();
        assert_eq!(ds.labels(), &[2.5, -3.0]);
    }

    #[test]
    fn rejects_ragged_rows() {
        let text = "y,a,b\n1,2,3\n1,2\n";
        let err = read_csv(text.as_bytes(), CsvOptions::default()).unwrap_err();
        assert!(matches!(err, DataError::Parse { line: 3, .. }), "{err}");
    }

    #[test]
    fn rejects_non_numeric() {
        let text = "y,a\n1,hello\n";
        assert!(read_csv(text.as_bytes(), CsvOptions::default()).is_err());
    }

    #[test]
    fn rejects_empty_input() {
        let err = read_csv("".as_bytes(), CsvOptions::default()).unwrap_err();
        assert!(matches!(err, DataError::EmptyDataset));
        // Header only is also empty.
        let err = read_csv("a,b\n".as_bytes(), CsvOptions::default()).unwrap_err();
        assert!(matches!(err, DataError::EmptyDataset));
    }

    #[test]
    fn rejects_label_column_out_of_range() {
        let text = "1,2\n";
        let opts = CsvOptions {
            label_column: 5,
            has_header: false,
            ..Default::default()
        };
        assert!(read_csv(text.as_bytes(), opts).is_err());
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let text = "y,x\n\n# comment\n1,5\n";
        let ds = read_csv(text.as_bytes(), CsvOptions::default()).unwrap();
        assert_eq!(ds.num_rows(), 1);
        assert_eq!(ds.row(0).get(0), 5.0);
    }
}
