#!/usr/bin/env sh
# Repo CI gate. Run from the repo root:
#
#   ./ci.sh
#
# Mirrors what the driver enforces: formatting, lint-clean at -D warnings,
# and the tier-1 suite (release build + the root package's tests).
set -eu

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> observability smoke: determinism gate + trace check"
cargo build --release -q -p dimboost-cli -p dimboost-bench
SMOKE=$(mktemp -d)
trap 'rm -rf "$SMOKE"' EXIT
BIN=target/release
"$BIN/dimboost" gen --out "$SMOKE/train.libsvm" --rows 600 --features 60 --nnz 12 --seed 7

# Two identical runs must agree byte for byte: canonical reports, canonical
# traces, and a report_diff exit status of 0. The batch size is forced far
# below the shard size so the histogram builders genuinely run multi-threaded
# — this cmp is what catches any scheduling-dependent histogram race.
for run in a b; do
  "$BIN/dimboost" train --data "$SMOKE/train.libsvm" --model "$SMOKE/model_$run.json" \
    --trees 3 --depth 4 --workers 3 --servers 2 --seed 7 \
    --threads 4 --batch-size 25 \
    --report-canonical "$SMOKE/report_$run.json" \
    --trace "$SMOKE/trace_$run.json" \
    --trace-canonical "$SMOKE/trace_$run.canonical.json" \
    --trace-events "$SMOKE/train_$run.events" \
    --profile "$SMOKE/train_$run.profile.json" > /dev/null
done
cmp "$SMOKE/report_a.json" "$SMOKE/report_b.json"
cmp "$SMOKE/trace_a.canonical.json" "$SMOKE/trace_b.canonical.json"
cmp "$SMOKE/train_a.events" "$SMOKE/train_b.events"
cmp "$SMOKE/train_a.profile.json" "$SMOKE/train_b.profile.json"
"$BIN/report_diff" "$SMOKE/report_a.json" "$SMOKE/report_b.json"
"$BIN/trace_check" --workers 3 --servers 2 \
  "$SMOKE/trace_a.json" "$SMOKE/trace_a.canonical.json"

echo "==> analyze: trace profile must be byte-stable and self-checking"
# The offline profiler over the exported events text must reproduce the
# in-process --profile artifact byte for byte, stay byte-identical across
# reruns, and pass report_diff like every other canonical report.
"$BIN/trace_analyze" --out "$SMOKE/profile_a.json" \
  --folded "$SMOKE/profile_a.folded" "$SMOKE/train_a.events" > /dev/null
"$BIN/trace_analyze" --out "$SMOKE/profile_b.json" "$SMOKE/train_b.events" > /dev/null
cmp "$SMOKE/profile_a.json" "$SMOKE/profile_b.json"
cmp "$SMOKE/profile_a.json" "$SMOKE/train_a.profile.json"
"$BIN/report_diff" "$SMOKE/profile_a.json" "$SMOKE/profile_b.json"
grep -q '^net;' "$SMOKE/profile_a.folded"

# The profiler's structural checks must bite: zeroing a mid-stream
# collective's duration breaks the critical-path tiling identity, and
# inflating the last service's duration breaks busy + idle == span
# conservation. Both corrupted fixtures still parse — the failures must
# come from the analyzer (exit 1), not the parser (exit 2).
awk '/ kind=collective / && !(/ dur=0 /) { n++; if (n == 2) sub(/ dur=[^ ]*/, " dur=0") } { print }' \
  "$SMOKE/train_a.events" > "$SMOKE/corrupt_path.events"
set +e
"$BIN/trace_analyze" "$SMOKE/corrupt_path.events" > /dev/null 2> "$SMOKE/corrupt_path.err"
status=$?
set -e
if [ "$status" -ne 1 ] || ! grep -q 'tile' "$SMOKE/corrupt_path.err"; then
  echo "corrupted collective should break the critical-path identity (got $status)" >&2
  cat "$SMOKE/corrupt_path.err" >&2
  exit 1
fi
line=$(grep -n ' kind=service ' "$SMOKE/train_a.events" | tail -1 | cut -d: -f1)
sed "${line}s/ dur=/ dur=9/" "$SMOKE/train_a.events" > "$SMOKE/corrupt_busy.events"
set +e
"$BIN/trace_analyze" "$SMOKE/corrupt_busy.events" > /dev/null 2> "$SMOKE/corrupt_busy.err"
status=$?
set -e
if [ "$status" -ne 1 ] || ! grep -q 'conserv' "$SMOKE/corrupt_busy.err"; then
  echo "corrupted service should break busy/idle conservation (got $status)" >&2
  cat "$SMOKE/corrupt_busy.err" >&2
  exit 1
fi

# A differing configuration (low-precision wire format) must be flagged.
"$BIN/dimboost" train --data "$SMOKE/train.libsvm" --model "$SMOKE/model_lp.json" \
  --trees 3 --depth 4 --workers 3 --servers 2 --seed 7 --bits 4 \
  --report-canonical "$SMOKE/report_lp.json" > /dev/null
if "$BIN/report_diff" --quiet "$SMOKE/report_a.json" "$SMOKE/report_lp.json" 2> /dev/null; then
  echo "report_diff failed to flag a low-precision vs full-precision run" >&2
  exit 1
fi

echo "==> serving: compiled engine must score bit-identically across reruns"
# Two multi-threaded bench runs over the smoke model: score files and
# canonical serving reports must be byte-identical, and report_diff must
# accept the timed reports (only wall-clock fields may differ).
for run in a b; do
  "$BIN/dimboost" bench --data "$SMOKE/train.libsvm" --model "$SMOKE/model_a.json" \
    --threads 4 --batch-size 64 --repeats 3 \
    --scores "$SMOKE/scores_$run.txt" \
    --report "$SMOKE/serving_$run.json" \
    --report-canonical "$SMOKE/serving_$run.canonical.json" > /dev/null
done
cmp "$SMOKE/scores_a.txt" "$SMOKE/scores_b.txt"
cmp "$SMOKE/serving_a.canonical.json" "$SMOKE/serving_b.canonical.json"
"$BIN/report_diff" "$SMOKE/serving_a.json" "$SMOKE/serving_b.json"
# The single-row predict path must agree with the batch engine byte for byte.
"$BIN/dimboost" predict --data "$SMOKE/train.libsvm" --model "$SMOKE/model_a.json" \
  --threads 2 --batch-size 100 --output "$SMOKE/predict.txt"
cmp "$SMOKE/scores_a.txt" "$SMOKE/predict.txt"

echo "==> fused kernel: perf gates + canonical identity + bit-identical training"
# Two small hist_kernel_bench runs: the first gates the fused kernel at 1.5x
# the per-node binned path's wall time and the quantized kernel at 1.1x
# *faster* than f32 fused at every thread count (both on the wide preset,
# where kernel throughput rather than per-call overhead dominates); the pair
# must be canonical-report identical (all throughput fields and the
# quantized_speedup ratios are wall-only and ignored by report_diff's
# built-in rules — structure and checksums must match).
HIST_SIZES="--rows 4000 --features 80 --nnz 10 --nodes 8 \
  --wide-rows 40000 --wide-features 200 --wide-nnz 16 --wide-nodes 16"
"$BIN/hist_kernel_bench" $HIST_SIZES \
  --rounds 8 --batch-size 256 --seed 5 --threads-list 1,4 \
  --out "$SMOKE/hist_a.json" --assert-fused-ratio 1.5 \
  --assert-quantized-ratio 1.1 > /dev/null
"$BIN/hist_kernel_bench" $HIST_SIZES \
  --rounds 8 --batch-size 256 --seed 5 --threads-list 1,4 \
  --out "$SMOKE/hist_b.json" > /dev/null
"$BIN/report_diff" "$SMOKE/hist_a.json" "$SMOKE/hist_b.json"
# The quantized kernel's cross-thread-count bit-equality verdict must be
# recorded — and true — for every problem in the report (the bench also
# hard-fails on inequality; this guards the report plumbing itself).
if [ "$(grep -o '"quantized_checksums_equal":true' "$SMOKE/hist_a.json" | wc -l)" -ne 2 ] \
  || grep -q '"quantized_checksums_equal":false' "$SMOKE/hist_a.json"; then
  echo "hist bench did not record quantized checksum equality for both problems" >&2
  exit 1
fi
# Multi-threaded --fused-layer training must be bit-identical across reruns:
# same model bytes, same canonical report, and report_diff-clean.
for run in a b; do
  "$BIN/dimboost" train --data "$SMOKE/train.libsvm" --model "$SMOKE/model_fused_$run.json" \
    --trees 3 --depth 4 --workers 3 --servers 2 --seed 7 \
    --threads 4 --batch-size 25 --fused-layer \
    --report-canonical "$SMOKE/report_fused_$run.json" > /dev/null
done
cmp "$SMOKE/model_fused_a.json" "$SMOKE/model_fused_b.json"
cmp "$SMOKE/report_fused_a.json" "$SMOKE/report_fused_b.json"
"$BIN/report_diff" "$SMOKE/report_fused_a.json" "$SMOKE/report_fused_b.json"

echo "==> quantized histograms: bit-identical across thread counts and kernels"
# The f32 gate above compares reruns of ONE configuration; the quantized
# accumulator makes the stronger claim — integer sums are associative, so
# the model must not depend on the thread count, the batch size, or the
# per-node vs fused kernel at all. Train at --threads 2 and --threads 8
# with different batch sizes: model bytes cmp-identical, canonical reports
# cmp-identical, report_diff exit 0.
"$BIN/dimboost" train --data "$SMOKE/train.libsvm" --model "$SMOKE/model_q2.json" \
  --trees 3 --depth 4 --workers 3 --servers 2 --seed 7 \
  --threads 2 --batch-size 25 --quantized-hist --fused-layer \
  --report-canonical "$SMOKE/report_q2.json" > /dev/null
"$BIN/dimboost" train --data "$SMOKE/train.libsvm" --model "$SMOKE/model_q8.json" \
  --trees 3 --depth 4 --workers 3 --servers 2 --seed 7 \
  --threads 8 --batch-size 64 --quantized-hist --fused-layer \
  --report-canonical "$SMOKE/report_q8.json" > /dev/null
cmp "$SMOKE/model_q2.json" "$SMOKE/model_q8.json"
cmp "$SMOKE/report_q2.json" "$SMOKE/report_q8.json"
"$BIN/report_diff" "$SMOKE/report_q2.json" "$SMOKE/report_q8.json"
# The per-node quantized kernel (no --fused-layer) must produce the same
# model bytes as the fused legs — the kernels share one fixed-point format.
"$BIN/dimboost" train --data "$SMOKE/train.libsvm" --model "$SMOKE/model_qpn.json" \
  --trees 3 --depth 4 --workers 3 --servers 2 --seed 7 \
  --threads 4 --batch-size 25 --quantized-hist > /dev/null
cmp "$SMOKE/model_q2.json" "$SMOKE/model_qpn.json"
# The quantized telemetry must surface in the canonical report.
grep -q '"quant_hist":{"bits":' "$SMOKE/report_q2.json"

echo "==> sparse exchange: compressed frames must shrink the wire, never the model"
# A wide, very sparse dataset is where block-distributed sparse frames pay
# off: most (stripe, feature-block) histogram deltas are empty or nearly so.
"$BIN/dimboost" gen --out "$SMOKE/wide.libsvm" --rows 500 --features 400 --nnz 8 --seed 9
for run in dense sparse; do
  flag=""
  [ "$run" = sparse ] && flag="--sparse-wire"
  "$BIN/dimboost" train --data "$SMOKE/wide.libsvm" --model "$SMOKE/model_wide_$run.json" \
    --trees 3 --depth 4 --workers 3 --servers 2 --seed 7 \
    --threads 4 --batch-size 64 $flag \
    --report-canonical "$SMOKE/report_wide_$run.json" > /dev/null
done
# Headline invariant: the sparse exchange is an encoding, not an algorithm —
# model bytes are cmp-identical and the report agrees on everything but the
# wire accounting (report_diff --wire keeps losses, gains, node instances and
# hist_bytes_raw strict).
cmp "$SMOKE/model_wide_dense.json" "$SMOKE/model_wide_sparse.json"
"$BIN/report_diff" --wire "$SMOKE/report_wide_dense.json" "$SMOKE/report_wide_sparse.json"
# The compression must actually bite: at least 2x fewer histogram bytes on
# the wire, and the per-message encoding choices must be recorded — a wide
# sparse grid that never picks a compressed layout means the selector is dead.
raw=$(sed -n 's/.*"sparsity":{"raw_bytes":\([0-9]*\),.*/\1/p' "$SMOKE/report_wide_sparse.json")
wire=$(sed -n 's/.*"wire_bytes":\([0-9]*\),"reduction_x".*/\1/p' "$SMOKE/report_wide_sparse.json")
if [ -z "$raw" ] || [ -z "$wire" ] || [ "$raw" -lt $((wire * 2)) ]; then
  echo "sparse wire reduction below 2x (raw=${raw:-?} wire=${wire:-?})" >&2
  exit 1
fi
bitmap=$(sed -n 's/.*"sparsity":.*"bitmap":\([0-9]*\),.*/\1/p' "$SMOKE/report_wide_sparse.json")
runs=$(sed -n 's/.*"sparsity":.*"runs":\([0-9]*\),.*/\1/p' "$SMOKE/report_wide_sparse.json")
if [ "$((${bitmap:-0} + ${runs:-0}))" -eq 0 ]; then
  echo "sparse run never chose a compressed frame layout" >&2
  exit 1
fi
if grep -q '"sparsity":' "$SMOKE/report_wide_dense.json"; then
  echo "dense run must not emit a sparsity section" >&2
  exit 1
fi
# Sparse runs stay bit-deterministic across reruns.
"$BIN/dimboost" train --data "$SMOKE/wide.libsvm" --model "$SMOKE/model_wide_sparse2.json" \
  --trees 3 --depth 4 --workers 3 --servers 2 --seed 7 \
  --threads 4 --batch-size 64 --sparse-wire \
  --report-canonical "$SMOKE/report_wide_sparse2.json" > /dev/null
cmp "$SMOKE/report_wide_sparse.json" "$SMOKE/report_wide_sparse2.json"
# Quantized path: the sparse frame carries codes, scales and zero buckets —
# still bit-identical to the dense quantized run.
for run in dense sparse; do
  flag=""
  [ "$run" = sparse ] && flag="--sparse-wire"
  "$BIN/dimboost" train --data "$SMOKE/wide.libsvm" --model "$SMOKE/model_wq_$run.json" \
    --trees 3 --depth 4 --workers 3 --servers 2 --seed 7 --bits 4 \
    --threads 4 --batch-size 64 $flag \
    --report-canonical "$SMOKE/report_wq_$run.json" > /dev/null
done
cmp "$SMOKE/model_wq_dense.json" "$SMOKE/model_wq_sparse.json"
"$BIN/report_diff" --wire "$SMOKE/report_wq_dense.json" "$SMOKE/report_wq_sparse.json"

echo "==> serve-sim: open-loop traffic replay must be bit-deterministic"
# Two identical serve-sim runs — seeded arrivals, SLO batching, a hot-swap
# to the low-precision model mid-stream — must agree byte for byte on the
# canonical report and the event trace, and report_diff must accept the
# timed reports (only wall fields may differ).
for run in a b; do
  "$BIN/dimboost" serve-sim --data "$SMOKE/train.libsvm" --model "$SMOKE/model_a.json" \
    --requests 800 --rate 20000 --seed 11 --queue-cap 64 --max-batch 16 \
    --slo 0.02 --swap-at 0.01 --swap-tenant 0 --swap-model "$SMOKE/model_lp.json" \
    --report "$SMOKE/serve_$run.json" \
    --report-canonical "$SMOKE/serve_$run.canonical.json" \
    --trace "$SMOKE/serve_$run.trace.txt" \
    --profile "$SMOKE/serve_$run.profile.json" > /dev/null
done
cmp "$SMOKE/serve_a.canonical.json" "$SMOKE/serve_b.canonical.json"
cmp "$SMOKE/serve_a.trace.txt" "$SMOKE/serve_b.trace.txt"
cmp "$SMOKE/serve_a.profile.json" "$SMOKE/serve_b.profile.json"
"$BIN/report_diff" "$SMOKE/serve_a.json" "$SMOKE/serve_b.json"
# The offline profiler sniffs the serve trace header and must reproduce the
# in-process --profile artifact byte for byte, report_diff-clean.
"$BIN/trace_analyze" --out "$SMOKE/serve_offline.profile.json" \
  "$SMOKE/serve_a.trace.txt" > /dev/null
cmp "$SMOKE/serve_offline.profile.json" "$SMOKE/serve_a.profile.json"
"$BIN/report_diff" "$SMOKE/serve_offline.profile.json" "$SMOKE/serve_b.profile.json"
# Overload leg: offered load far beyond saturation against a tiny queue must
# engage admission control — a run that never sheds means the policy is dead.
"$BIN/dimboost" serve-sim --data "$SMOKE/train.libsvm" --model "$SMOKE/model_a.json" \
  --requests 400 --rate 1000000 --seed 3 --queue-cap 4 --max-batch 8 \
  --slo 0.005 --report-canonical "$SMOKE/serve_overload.json" > /dev/null
if grep -q '"shed":0,' "$SMOKE/serve_overload.json"; then
  echo "serve-sim overload run shed nothing — load shedding is not engaging" >&2
  exit 1
fi

echo "==> chaos: faults + crash/resume must change timing, never the model"
cat > "$SMOKE/plan.txt" <<'EOF'
# Canned chaos: lossy network, a histogram-phase straggler, a server
# outage window, and a scripted worker crash at round 2.
seed 77
drop 0.15
ack_drop 0.1
dup 0.1
straggler worker=1 factor=3.0 phase=build_histogram
outage server=0 start=0.01 dur=0.05
crash round=2
EOF
# The faulted leg dies at the scripted crash (exit 3, not a real failure)...
set +e
"$BIN/dimboost" train --data "$SMOKE/train.libsvm" --model "$SMOKE/model_chaos.json" \
  --trees 3 --depth 4 --workers 3 --servers 2 --seed 7 \
  --threads 4 --batch-size 25 \
  --fault-plan "$SMOKE/plan.txt" --checkpoint-dir "$SMOKE/ckpt" > /dev/null 2>&1
status=$?
set -e
if [ "$status" -ne 3 ]; then
  echo "expected the scripted crash to exit with status 3, got $status" >&2
  exit 1
fi
# ...and resumes from the checkpoint to completion.
"$BIN/dimboost" train --data "$SMOKE/train.libsvm" --model "$SMOKE/model_chaos.json" \
  --trees 3 --depth 4 --workers 3 --servers 2 --seed 7 \
  --threads 4 --batch-size 25 \
  --fault-plan "$SMOKE/plan.txt" --checkpoint-dir "$SMOKE/ckpt" --resume \
  --report-canonical "$SMOKE/report_chaos.json" \
  --trace-canonical "$SMOKE/trace_chaos.canonical.json" > /dev/null
# Exactness invariant: same model bytes as the clean run, and the report
# agrees on everything but timing and the fault counters.
cmp "$SMOKE/model_a.json" "$SMOKE/model_chaos.json"
"$BIN/report_diff" --faults "$SMOKE/report_a.json" "$SMOKE/report_chaos.json"
"$BIN/trace_check" --workers 3 --servers 2 --expect-faults \
  "$SMOKE/trace_chaos.canonical.json"

echo "==> elasticity: membership churn must change timing, never the model"
cat > "$SMOKE/elastic.txt" <<'EOF'
# Elastic schedule: a fourth machine joins, one retires warm, one is torn
# down cold, one runs on slow hardware, and backups cover stragglers.
join worker=3 round=1
leave worker=0 round=2 policy=handoff
leave worker=1 round=2 policy=redistribute
speed worker=2 factor=2.0
speculate threshold=1.5
EOF
# Two identical elastic runs must agree byte for byte...
for run in a b; do
  "$BIN/dimboost" train --data "$SMOKE/train.libsvm" --model "$SMOKE/model_elastic_$run.json" \
    --trees 3 --depth 4 --workers 3 --servers 2 --seed 7 \
    --threads 4 --batch-size 25 \
    --fault-plan "$SMOKE/elastic.txt" \
    --report-canonical "$SMOKE/report_elastic_$run.json" > /dev/null
done
cmp "$SMOKE/model_elastic_a.json" "$SMOKE/model_elastic_b.json"
cmp "$SMOKE/report_elastic_a.json" "$SMOKE/report_elastic_b.json"
# ...and the headline invariant holds: the model is cmp-identical to the
# fixed-membership run, and the report agrees on everything but timing and
# the fault/membership sections.
cmp "$SMOKE/model_a.json" "$SMOKE/model_elastic_a.json"
"$BIN/report_diff" --faults "$SMOKE/report_a.json" "$SMOKE/report_elastic_a.json"
grep -q '"membership":{"joins":1,"leaves":2,' "$SMOKE/report_elastic_a.json"
# A chronic 8x straggler under speculation: the backups must actually win,
# and the wins must be visible in the trace profile's membership lane.
cat > "$SMOKE/speculate.txt" <<'EOF'
speed worker=1 factor=8.0
speculate threshold=1.5
EOF
"$BIN/dimboost" train --data "$SMOKE/train.libsvm" --model "$SMOKE/model_spec.json" \
  --trees 3 --depth 4 --workers 3 --servers 2 --seed 7 \
  --threads 4 --batch-size 25 \
  --fault-plan "$SMOKE/speculate.txt" \
  --profile "$SMOKE/spec.profile.json" > /dev/null
cmp "$SMOKE/model_a.json" "$SMOKE/model_spec.json"
grep -q 'speculative_backup' "$SMOKE/spec.profile.json"
grep -q 'backup_win' "$SMOKE/spec.profile.json"

echo "CI green."
