#!/usr/bin/env sh
# Repo CI gate. Run from the repo root:
#
#   ./ci.sh
#
# Mirrors what the driver enforces: formatting, lint-clean at -D warnings,
# and the tier-1 suite (release build + the root package's tests).
set -eu

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "CI green."
