//! Facade-level smoke for the serving simulation: train a real model,
//! drive it with seeded traffic through `dimboost::serving`, and check the
//! report is rerun-stable and internally consistent.

use dimboost::core::{train_single_machine, GbdtConfig, LossKind};
use dimboost::data::synthetic::{generate, SparseGenConfig};
use dimboost::predict::CompiledModel;
use dimboost::serving::{poisson_arrivals, run_serve_sim, ServeSimConfig, TenantSpec};

#[test]
fn trained_model_serves_seeded_traffic_deterministically() {
    let ds = generate(&SparseGenConfig::new(300, 40, 8, 17));
    let cfg = GbdtConfig {
        num_trees: 4,
        max_depth: 3,
        loss: LossKind::Logistic,
        ..GbdtConfig::default()
    };
    let compiled = CompiledModel::compile(&train_single_machine(&ds, &cfg).unwrap());
    let tenants = [TenantSpec {
        name: "tenant0".into(),
        model: compiled.clone(),
    }];
    let config = ServeSimConfig {
        seed: 123,
        ..ServeSimConfig::default()
    };
    let arrivals = poisson_arrivals(config.seed, 500, 4000.0, 1, ds.num_rows());
    let a = run_serve_sim(&tenants, &[], &ds, &arrivals, &config);
    let b = run_serve_sim(&tenants, &[], &ds, &arrivals, &config);
    assert_eq!(a.report.canonical_json(), b.report.canonical_json());
    assert_eq!(a.trace, b.trace);
    assert_eq!(
        a.report.arrived,
        a.report.served + a.report.shed + a.report.in_flight_at_end
    );
    // Every served score is the compiled engine's own answer for that row.
    for rec in &a.records {
        assert_eq!(
            rec.score.to_bits(),
            compiled.predict(&ds.row(rec.row)).to_bits()
        );
    }
    assert!(a
        .report
        .canonical_json()
        .starts_with("{\"kind\":\"serving_sim\""));
}
