//! Observability guarantees, end to end: the event trace a training run
//! records must be internally well-formed, agree bit-exactly with the
//! communication ledger the run reports, and never leave comm in the
//! legacy untagged bucket. The metrics registry must surface the
//! deterministic `sim/` percentiles in the run report.

use dimboost::core::{train_distributed, GbdtConfig, TrainOutput};
use dimboost::data::partition::partition_rows;
use dimboost::data::synthetic::{generate, SparseGenConfig};
use dimboost::ps::PsConfig;
use dimboost::simnet::trace::{comm_totals, validate_events, EventKind};
use dimboost::simnet::{CostModel, Phase};

fn traced_run() -> TrainOutput {
    let ds = generate(&SparseGenConfig::new(1_500, 200, 10, 5));
    let shards = partition_rows(&ds, 3).unwrap();
    let mut config = GbdtConfig {
        num_trees: 3,
        max_depth: 4,
        num_candidates: 10,
        collect_trace: true,
        ..GbdtConfig::default()
    };
    // Cover the wire-compression path too: low precision changes what the
    // ledger records, and the trace must follow it exactly.
    config.opts.low_precision = true;
    let ps = PsConfig {
        num_servers: 2,
        num_partitions: 0,
        cost_model: CostModel::GIGABIT_LAN,
    };
    train_distributed(&shards, &config, ps).unwrap()
}

#[test]
fn trainer_never_uses_the_legacy_other_bucket() {
    let out = traced_run();
    // Every recorded event must be phase-attributed: nothing in the report,
    // and no trace event, may land in `Phase::Other`.
    assert!(
        out.report.phase(Phase::Other).is_none(),
        "report carries an Other-phase bucket: {:?}",
        out.report.phase(Phase::Other)
    );
    let trace = out.trace.as_ref().unwrap();
    assert!(
        trace.events.iter().all(|e| e.phase != Phase::Other),
        "trace contains Other-phase events"
    );
}

#[test]
fn trace_is_well_formed_and_sums_to_the_ledger() {
    let out = traced_run();
    let trace = out.trace.as_ref().unwrap();
    trace.validate().expect("trace must validate");
    validate_events(&trace.events).expect("event stream must validate");

    // The comm-bearing events fold back to exactly the per-phase ledger the
    // report carries — same f64 sums, bit for bit, because both sides are
    // fed by the single StatsRecorder funnel.
    let totals = comm_totals(&trace.events);
    assert_eq!(totals.total(), out.report.comm);
    for p in &out.report.phases {
        assert_eq!(
            *totals.phase(p.phase),
            p.comm,
            "phase {} disagrees between trace and report",
            p.phase.name()
        );
    }

    // The run exercises every event kind except the legacy bucket.
    for kind in [
        EventKind::Compute,
        EventKind::Request,
        EventKind::Collective,
    ] {
        assert!(
            trace.events.iter().any(|e| e.kind == kind),
            "no {} events recorded",
            kind.name()
        );
    }
}

#[test]
fn report_carries_deterministic_percentiles() {
    let out = traced_run();
    let names: Vec<&str> = out
        .report
        .percentiles
        .iter()
        .map(|m| m.name.as_str())
        .collect();
    for expected in [
        "sim/ps_requests",
        "sim/ps_request_bytes",
        "sim/ps_service_secs",
    ] {
        assert!(names.contains(&expected), "missing metric {expected}");
    }
    // Deterministic metrics survive into the canonical document; wall-clock
    // ones must not (they differ across reruns).
    let canonical = out.report.canonical_json();
    assert!(canonical.contains("\"sim/ps_requests\""));
    assert!(!canonical.contains("\"wall/"));
    // Histogram percentiles are ordered and bounded by the observed range.
    for m in &out.report.percentiles {
        if m.kind == "histogram" && m.count > 0 {
            assert!(
                m.min <= m.p50 && m.p50 <= m.p95 && m.p95 <= m.p99 && m.p99 <= m.max,
                "metric {} has inconsistent percentiles: {m:?}",
                m.name
            );
        }
    }
}
