//! Observability guarantees, end to end: the event trace a training run
//! records must be internally well-formed, agree bit-exactly with the
//! communication ledger the run reports, and never leave comm in the
//! legacy untagged bucket. The metrics registry must surface the
//! deterministic `sim/` percentiles in the run report.

use dimboost::core::{train_distributed, GbdtConfig, TrainOutput};
use dimboost::data::partition::partition_rows;
use dimboost::data::synthetic::{generate, SparseGenConfig};
use dimboost::ps::PsConfig;
use dimboost::simnet::trace::{comm_totals, validate_events, EventKind, Trace};
use dimboost::simnet::{analyze_trace, CostModel, Phase};

fn traced_run() -> TrainOutput {
    let ds = generate(&SparseGenConfig::new(1_500, 200, 10, 5));
    let shards = partition_rows(&ds, 3).unwrap();
    let mut config = GbdtConfig {
        num_trees: 3,
        max_depth: 4,
        num_candidates: 10,
        collect_trace: true,
        ..GbdtConfig::default()
    };
    // Cover the wire-compression path too: low precision changes what the
    // ledger records, and the trace must follow it exactly.
    config.opts.low_precision = true;
    let ps = PsConfig {
        num_servers: 2,
        num_partitions: 0,
        cost_model: CostModel::GIGABIT_LAN,
    };
    train_distributed(&shards, &config, ps).unwrap()
}

#[test]
fn trainer_never_uses_the_legacy_other_bucket() {
    let out = traced_run();
    // Every recorded event must be phase-attributed: nothing in the report,
    // and no trace event, may land in `Phase::Other`.
    assert!(
        out.report.phase(Phase::Other).is_none(),
        "report carries an Other-phase bucket: {:?}",
        out.report.phase(Phase::Other)
    );
    let trace = out.trace.as_ref().unwrap();
    assert!(
        trace.events.iter().all(|e| e.phase != Phase::Other),
        "trace contains Other-phase events"
    );
}

#[test]
fn trace_is_well_formed_and_sums_to_the_ledger() {
    let out = traced_run();
    let trace = out.trace.as_ref().unwrap();
    trace.validate().expect("trace must validate");
    validate_events(&trace.events).expect("event stream must validate");

    // The comm-bearing events fold back to exactly the per-phase ledger the
    // report carries — same f64 sums, bit for bit, because both sides are
    // fed by the single StatsRecorder funnel.
    let totals = comm_totals(&trace.events);
    assert_eq!(totals.total(), out.report.comm);
    for p in &out.report.phases {
        assert_eq!(
            *totals.phase(p.phase),
            p.comm,
            "phase {} disagrees between trace and report",
            p.phase.name()
        );
    }

    // The run exercises every event kind except the legacy bucket.
    for kind in [
        EventKind::Compute,
        EventKind::Request,
        EventKind::Collective,
    ] {
        assert!(
            trace.events.iter().any(|e| e.kind == kind),
            "no {} events recorded",
            kind.name()
        );
    }
}

#[test]
fn trace_profile_explains_a_real_training_run() {
    // The analyzer must hold its structural identities on a genuine
    // multi-round distributed run, not just hand-built fixtures: the
    // critical path tiles the simulated timeline exactly, utilization
    // conserves busy + idle == span per track, and the whole profile
    // survives an events-text round trip byte for byte.
    let out = traced_run();
    let trace = out.trace.as_ref().unwrap();
    let profile = analyze_trace(trace).expect("a valid run must profile cleanly");

    // Bit-exact critical-path identity against the run's own clock.
    let end = trace
        .events
        .iter()
        .map(|e| e.begin.0 + e.sim_dur.0)
        .fold(0.0f64, f64::max);
    assert_eq!(
        profile.critical_path.total_secs.to_bits(),
        end.to_bits(),
        "critical path must equal the final simulated time bit-exactly"
    );
    assert_eq!(profile.sim_end_secs.to_bits(), end.to_bits());

    // Per-(track, phase) attribution tiles the path: exact on event
    // counts, and the float sum re-adds to the total within regrouping
    // tolerance (bucket sums re-associate the same f64 additions).
    let attributed_events: u64 = profile
        .critical_path
        .attribution
        .iter()
        .map(|a| a.events)
        .sum();
    assert_eq!(attributed_events, profile.critical_path.segments);
    let attributed: f64 = profile
        .critical_path
        .attribution
        .iter()
        .map(|a| a.secs)
        .sum();
    assert!(
        (attributed - profile.critical_path.total_secs).abs()
            <= 1e-9 * profile.critical_path.total_secs.max(1.0),
        "attribution sums to {attributed}, path total {}",
        profile.critical_path.total_secs
    );

    // Conservation per track, and one round profile per trained tree
    // (plus the setup round).
    for u in &profile.utilization {
        assert!(
            (u.busy_secs + u.idle_secs - end).abs() <= 1e-9 * end.max(1.0),
            "track {} breaks busy + idle == span",
            u.track
        );
    }
    assert_eq!(profile.rounds.len(), 3 + 1, "3 trees + setup round");

    // The offline path (events text → parse → analyze) reproduces the
    // in-process profile byte for byte — what `dimboost analyze` and the
    // ci.sh gate rely on.
    let reparsed = Trace::parse_events_text(&trace.events_text()).unwrap();
    let offline = analyze_trace(&reparsed).unwrap();
    assert_eq!(offline.canonical_json(), profile.canonical_json());
    assert_eq!(offline.folded_stacks(), profile.folded_stacks());
    assert!(profile.folded_stacks().contains("net;build_histogram;"));
}

#[test]
fn report_carries_deterministic_percentiles() {
    let out = traced_run();
    let names: Vec<&str> = out
        .report
        .percentiles
        .iter()
        .map(|m| m.name.as_str())
        .collect();
    for expected in [
        "sim/ps_requests",
        "sim/ps_request_bytes",
        "sim/ps_service_secs",
    ] {
        assert!(names.contains(&expected), "missing metric {expected}");
    }
    // Deterministic metrics survive into the canonical document; wall-clock
    // ones must not (they differ across reruns).
    let canonical = out.report.canonical_json();
    assert!(canonical.contains("\"sim/ps_requests\""));
    assert!(!canonical.contains("\"wall/"));
    // Histogram percentiles are ordered and bounded by the observed range.
    for m in &out.report.percentiles {
        if m.kind == "histogram" && m.count > 0 {
            assert!(
                m.min <= m.p50 && m.p50 <= m.p95 && m.p95 <= m.p99 && m.p99 <= m.max,
                "metric {} has inconsistent percentiles: {m:?}",
                m.name
            );
        }
    }
}
