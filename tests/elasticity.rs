//! Elastic cluster membership, end to end: scripted joins, leaves, speed
//! skew, and speculative backups may stretch the simulated clock but must
//! never change the learned model, the communication ledger, or the loss
//! curve. Logical data stripes are fixed for the whole run, so any
//! membership schedule is byte-identical to the fixed-membership run in
//! everything except timing.

use std::sync::OnceLock;

use dimboost::core::model_io::model_to_bytes;
use dimboost::core::{
    train_distributed_resilient, CheckpointOptions, FaultPlan, GbdtConfig, RobustOptions,
    RoundRecord, TrainError, TrainOutput,
};
use dimboost::data::partition::partition_rows;
use dimboost::data::synthetic::{generate, SparseGenConfig};
use dimboost::data::Dataset;
use dimboost::ps::PsConfig;
use dimboost::simnet::trace::Track;
use dimboost::simnet::{CostModel, Phase};

fn shards() -> Vec<Dataset> {
    let ds = generate(&SparseGenConfig::new(900, 120, 8, 31));
    partition_rows(&ds, 3).unwrap()
}

fn config() -> GbdtConfig {
    GbdtConfig {
        num_trees: 5,
        max_depth: 4,
        num_candidates: 10,
        seed: 17,
        collect_trace: true,
        ..GbdtConfig::default()
    }
}

fn ps() -> PsConfig {
    PsConfig {
        num_servers: 2,
        num_partitions: 0,
        cost_model: CostModel::GIGABIT_LAN,
    }
}

fn run(robust: &RobustOptions) -> Result<TrainOutput, TrainError> {
    train_distributed_resilient(&shards(), &config(), ps(), None, robust)
}

fn run_plan(plan: &str) -> TrainOutput {
    run(&RobustOptions {
        fault_plan: Some(FaultPlan::parse(plan).unwrap()),
        ..RobustOptions::default()
    })
    .unwrap()
}

/// Rounds with the run-to-run wall-clock field cleared: everything left is
/// a pure function of the merged global histograms (split gains, node
/// instance counts, histogram bytes) and the model updates, so equality
/// here means the per-round global histograms were bit-equal too.
fn strip_wall(rounds: &[RoundRecord]) -> Vec<RoundRecord> {
    rounds
        .iter()
        .map(|r| RoundRecord {
            compute_secs: 0.0,
            ..r.clone()
        })
        .collect()
}

/// The fixed-membership reference run, computed once.
fn reference() -> &'static TrainOutput {
    static REF: OnceLock<TrainOutput> = OnceLock::new();
    REF.get_or_init(|| run(&RobustOptions::default()).unwrap())
}

/// The full elastic schedule: a machine joins, one retires gracefully, one
/// is torn down cold, one runs on chronically slow hardware, and backups
/// cover whoever stalls a round badly enough.
const ELASTIC: &str = "join worker=3 round=1\n\
                       leave worker=0 round=2 policy=handoff\n\
                       leave worker=1 round=3 policy=redistribute\n\
                       speed worker=1 factor=2.0\n\
                       speculate threshold=1.5\n";

#[test]
fn elastic_membership_changes_timing_but_never_the_model() {
    let clean = reference();
    let elastic = run_plan(ELASTIC);

    // Headline invariant: model bytes are cmp-identical to the
    // uninterrupted fixed-membership run.
    assert_eq!(
        model_to_bytes(&clean.model),
        model_to_bytes(&elastic.model),
        "membership churn changed the learned model"
    );
    // The communication ledger is identical too: stripe transfers and
    // re-shards are charged as pure simulated time, never as ledger bytes.
    assert_eq!(clean.breakdown.comm.bytes, elastic.breakdown.comm.bytes);
    assert_eq!(
        clean.breakdown.comm.packages,
        elastic.breakdown.comm.packages
    );
    for phase in Phase::ALL {
        match (clean.report.phase(phase), elastic.report.phase(phase)) {
            (Some(c), Some(e)) => {
                assert_eq!(c.comm.bytes, e.comm.bytes, "{phase:?} bytes diverged");
                assert_eq!(
                    c.comm.packages, e.comm.packages,
                    "{phase:?} packages diverged"
                );
            }
            (None, None) => {}
            _ => panic!("{phase:?} present in only one report"),
        }
    }
    // Per-round telemetry — split gains, node instance counts, histogram
    // bytes — is bit-equal, and the clock only stretched.
    assert_eq!(
        strip_wall(&clean.report.rounds),
        strip_wall(&elastic.report.rounds)
    );
    assert!(elastic.breakdown.comm.sim_time > clean.breakdown.comm.sim_time);

    // The schedule was actually applied and accounted.
    let m = elastic
        .report
        .membership
        .as_ref()
        .expect("elastic run reports membership");
    assert_eq!(m.joins, 1);
    assert_eq!(m.leaves, 2);
    assert!(m.stripes_moved > 0, "no stripes moved");
    assert_eq!(m.epoch, 3, "one epoch bump per join/leave");
    assert!(m.handoff_secs > 0.0, "graceful leave charged no handoff");
    assert!(m.reshard_secs > 0.0, "cold leave charged no re-shard");
    assert!(m.elastic_secs > 0.0, "speed skew stretched nothing");
    assert!(
        clean.report.membership.is_none(),
        "fixed-membership run reported membership"
    );

    // The churn is visible on the membership trace track.
    let trace = elastic.trace.as_ref().unwrap();
    assert!(
        trace.events.iter().any(|e| e.track == Track::Membership),
        "no membership events on the timeline"
    );
}

#[test]
fn elastic_runs_are_exactly_reproducible() {
    let a = run_plan(ELASTIC);
    let b = run_plan(ELASTIC);
    assert_eq!(a.report.canonical_json(), b.report.canonical_json());
    assert_eq!(
        a.trace.as_ref().unwrap().canonical_chrome_json(),
        b.trace.as_ref().unwrap().canonical_chrome_json()
    );
}

#[test]
fn speculative_backups_win_against_a_chronic_straggler() {
    // One machine is 8x slow; backups launch at 1.5x the median.
    let slow = "speed worker=1 factor=8.0\n";
    let speculative = format!("{slow}speculate threshold=1.5\n");

    let without = run_plan(slow);
    let with = run_plan(&speculative);

    // Same model either way — a backup replays the same stripes and the
    // bit-identical earlier finisher wins.
    assert_eq!(model_to_bytes(&without.model), model_to_bytes(&with.model));
    assert_eq!(
        model_to_bytes(&reference().model),
        model_to_bytes(&with.model)
    );

    let m = with.report.membership.as_ref().unwrap();
    assert!(m.speculative_backups > 0, "no backups launched");
    assert!(m.backup_wins > 0, "no backup beat the straggler");
    assert!(m.speculation_saved_secs > 0.0, "wins saved no time");
    assert!(
        with.breakdown.comm.sim_time < without.breakdown.comm.sim_time,
        "speculation did not shorten the run ({} vs {})",
        with.breakdown.comm.sim_time.seconds(),
        without.breakdown.comm.sim_time.seconds()
    );

    // The backups are visible in the trace.
    let trace = with.trace.as_ref().unwrap();
    assert!(
        trace.events.iter().any(|e| e.track == Track::Membership),
        "no membership events on the timeline"
    );
}

#[test]
fn checkpoint_resume_mid_schedule_is_bit_exact() {
    let dir = std::env::temp_dir().join("dimboost_elasticity_ckpt");
    let _ = std::fs::remove_dir_all(&dir);

    let uninterrupted = run_plan(ELASTIC);

    // Crash at round 3 — after the join and both leaves have reshaped the
    // cluster — and resume from the checkpointed membership snapshot.
    let plan = format!("{ELASTIC}crash round=3\n");
    let crashing = RobustOptions {
        fault_plan: Some(FaultPlan::parse(&plan).unwrap()),
        checkpoint: Some(CheckpointOptions::new(&dir)),
        resume: false,
    };
    let err = run(&crashing).unwrap_err();
    assert!(
        matches!(err, TrainError::Crashed { round: 3, .. }),
        "expected the scripted crash, got {err}"
    );
    let resumed = run(&RobustOptions {
        resume: true,
        ..crashing
    })
    .unwrap();
    assert_eq!(resumed.report.resumed_from_round, Some(3));

    assert_eq!(
        model_to_bytes(&uninterrupted.model),
        model_to_bytes(&resumed.model),
        "resume under an elastic schedule diverged"
    );
    assert_eq!(
        strip_wall(&uninterrupted.report.rounds),
        strip_wall(&resumed.report.rounds)
    );
    // The restored overlay carries the same epoch and placement history.
    let (u, r) = (
        uninterrupted.report.membership.as_ref().unwrap(),
        resumed.report.membership.as_ref().unwrap(),
    );
    assert_eq!(u.epoch, r.epoch);

    std::fs::remove_dir_all(&dir).ok();
}

mod membership_schedules {
    use super::*;
    use proptest::collection::vec;
    use proptest::prelude::*;

    /// Turns an arbitrary event stream into a valid membership plan,
    /// tracking the live set in exactly the order the trainer applies
    /// events (per round: joins in plan order, then leaves). Returns the
    /// plan text plus the join/leave counts it settled on.
    fn plan_for(events: &[(usize, u8)]) -> (String, u64, u64) {
        let mut live: std::collections::BTreeSet<u32> = (0..3).collect();
        let mut next_id = 3u32;
        let mut lines = String::new();
        let (mut joins, mut leaves) = (0u64, 0u64);
        for round in 0..config().num_trees {
            for _ in events.iter().filter(|&&(r, k)| r == round && k == 0) {
                lines.push_str(&format!("join worker={next_id} round={round}\n"));
                live.insert(next_id);
                next_id += 1;
                joins += 1;
            }
            for &(_, kind) in events.iter().filter(|&&(r, k)| r == round && k != 0) {
                if live.len() <= 1 {
                    continue; // the last machine cannot leave
                }
                // Retire the smallest or largest live id, by handoff or by
                // cold redistribute, depending on the sampled kind.
                let victim = if kind % 2 == 1 {
                    *live.iter().next().unwrap()
                } else {
                    *live.iter().next_back().unwrap()
                };
                let policy = if kind < 3 { "handoff" } else { "redistribute" };
                lines.push_str(&format!(
                    "leave worker={victim} round={round} policy={policy}\n"
                ));
                live.remove(&victim);
                leaves += 1;
            }
        }
        (lines, joins, leaves)
    }

    proptest! {
        /// Any sequence of join/leave events yields per-round telemetry
        /// (split gains, node instances, histogram bytes — all pure
        /// functions of the merged global histograms) and a final model
        /// bit-equal to the fixed-membership run.
        #[test]
        fn any_schedule_matches_the_fixed_membership_run(
            events in vec((0usize..5, 0u8..5), 0..8)
        ) {
            let (plan, joins, leaves) = plan_for(&events);
            let elastic = run(&RobustOptions {
                fault_plan: Some(FaultPlan::parse(&plan).unwrap()),
                ..RobustOptions::default()
            })
            .unwrap();
            let clean = reference();
            prop_assert_eq!(
                model_to_bytes(&clean.model),
                model_to_bytes(&elastic.model),
                "schedule {:?} changed the model",
                plan
            );
            prop_assert_eq!(
                strip_wall(&clean.report.rounds),
                strip_wall(&elastic.report.rounds),
                "schedule {:?} changed per-round telemetry",
                plan
            );
            prop_assert_eq!(clean.breakdown.comm.bytes, elastic.breakdown.comm.bytes);
            prop_assert_eq!(clean.breakdown.comm.packages, elastic.breakdown.comm.packages);
            match &elastic.report.membership {
                Some(m) => {
                    prop_assert_eq!(m.joins, joins);
                    prop_assert_eq!(m.leaves, leaves);
                    prop_assert_eq!(m.epoch, joins + leaves);
                }
                None => prop_assert!(
                    plan.is_empty(),
                    "non-empty schedule reported no membership"
                ),
            }
        }
    }
}
