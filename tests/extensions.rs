//! Integration tests for the extensions beyond the paper, exercised through
//! the public facade the way a downstream user would.

use dimboost::core::metrics::{classification_error, multiclass_error};
use dimboost::core::{
    load_model, save_model, train_distributed, train_distributed_continue,
    train_distributed_with_eval, EvalOptions, GbdtConfig, LossKind, Optimizations,
};
use dimboost::data::partition::{partition_rows, train_test_split};
use dimboost::data::synthetic::{generate, LabelKind, SparseGenConfig};
use dimboost::ps::PsConfig;
use dimboost::simnet::CostModel;

fn ps(workers: usize) -> PsConfig {
    PsConfig {
        num_servers: workers,
        num_partitions: 0,
        cost_model: CostModel::GIGABIT_LAN,
    }
}

#[test]
fn full_extension_stack_trains_and_roundtrips() {
    // Everything at once: sibling subtraction + pre-binning + learned
    // default directions + row subsampling + early stopping, multiworker,
    // then serialize/deserialize and keep predicting identically.
    let ds = generate(&SparseGenConfig::new(3_000, 400, 20, 99));
    let (train, test) = train_test_split(&ds, 0.2, 99).unwrap();
    let shards = partition_rows(&train, 4).unwrap();
    let config = GbdtConfig {
        num_trees: 12,
        max_depth: 4,
        learning_rate: 0.3,
        instance_sample_ratio: 0.8,
        learn_default_direction: true,
        opts: Optimizations {
            hist_subtraction: true,
            pre_binning: true,
            ..Optimizations::ALL
        },
        ..GbdtConfig::default()
    };
    let ev = EvalOptions {
        dataset: &test,
        early_stopping_rounds: Some(4),
    };
    let out = train_distributed_with_eval(&shards, &config, ps(4), Some(ev)).unwrap();
    let err = classification_error(&out.model.predict_dataset(&test), test.labels());
    assert!(err < 0.42, "extension stack error {err}");
    assert!(out.model.check_consistency().is_ok());

    let mut buf = Vec::new();
    save_model(&out.model, &mut buf).unwrap();
    let back = load_model(buf.as_slice()).unwrap();
    assert_eq!(back, out.model);
    assert_eq!(
        back.predict_dataset(&test),
        out.model.predict_dataset(&test)
    );
}

#[test]
fn multiclass_distributed_with_warm_start() {
    let cfg_data = SparseGenConfig::new(3_000, 200, 15, 55)
        .with_label_kind(LabelKind::Multiclass { classes: 3 });
    let ds = generate(&cfg_data);
    let (train, test) = train_test_split(&ds, 0.2, 55).unwrap();
    let shards = partition_rows(&train, 3).unwrap();
    let mut config = GbdtConfig {
        num_trees: 4,
        max_depth: 4,
        learning_rate: 0.3,
        loss: LossKind::Softmax { classes: 3 },
        ..GbdtConfig::default()
    };
    config.opts.low_precision = false;

    let first = train_distributed(&shards, &config, ps(3)).unwrap();
    assert_eq!(first.model.num_trees(), 12); // 4 rounds x 3 classes

    // Continue for 4 more rounds and check it helps (or at least not hurts).
    let cont = train_distributed_continue(&first.model, &shards, &config, ps(3), None).unwrap();
    assert_eq!(cont.model.num_trees(), 24);
    let err_first = multiclass_error(&first.model.predict_dataset(&test), test.labels());
    let err_cont = multiclass_error(&cont.model.predict_dataset(&test), test.labels());
    assert!(
        err_cont <= err_first + 0.02,
        "warm start regressed: {err_first} -> {err_cont}"
    );
    assert!(err_cont < 2.0 / 3.0, "beats random 3-class guessing");
}

#[test]
fn feature_importance_is_stable_across_serialization() {
    let ds = generate(&SparseGenConfig::new(1_500, 100, 10, 7));
    let config = GbdtConfig {
        num_trees: 5,
        learning_rate: 0.3,
        ..GbdtConfig::default()
    };
    let shards = partition_rows(&ds, 2).unwrap();
    let out = train_distributed(&shards, &config, ps(2)).unwrap();
    let mut buf = Vec::new();
    save_model(&out.model, &mut buf).unwrap();
    let back = load_model(buf.as_slice()).unwrap();
    assert_eq!(back.feature_importance(), out.model.feature_importance());
    assert_eq!(back.top_features(5), out.model.top_features(5));
}
