//! Determinism guarantees, end to end.
//!
//! The whole reproduction is specified to be a pure function of
//! `(config, seed, shards, ps_config)`: the shim RNG pins the generator
//! family, the trainer seeds every stochastic step from `config.seed`, and
//! the simulated network charges closed-form costs. These tests pin that
//! contract at the system level — bit-identical models, communication
//! ledgers, and canonical run reports across reruns — and at the kernel
//! level, where the parallel batched histogram builder must agree with the
//! sequential reference for *any* thread count, batch size, and instance
//! subset.

use dimboost::core::hist_build::build_row;
use dimboost::core::loss::GradPair;
use dimboost::core::parallel::{build_row_batched, BatchConfig};
use dimboost::core::{train_distributed, FeatureMeta, GbdtConfig};
use dimboost::data::partition::partition_rows;
use dimboost::data::synthetic::{generate, SparseGenConfig};
use dimboost::data::{Dataset, SparseInstance};
use dimboost::ps::PsConfig;
use dimboost::simnet::CostModel;
use dimboost::sketch::SplitCandidates;
use proptest::collection::vec;
use proptest::prelude::*;

#[test]
fn identical_runs_produce_identical_models_and_reports() {
    let ds = generate(&SparseGenConfig::new(2_500, 300, 12, 11));
    let shards = partition_rows(&ds, 3).unwrap();
    // Quantization and row subsampling are the stochastic steps — leave
    // both on so the test covers the seeded paths, not just the trivially
    // deterministic ones.
    let mut config = GbdtConfig {
        num_trees: 4,
        max_depth: 4,
        num_candidates: 10,
        learning_rate: 0.3,
        num_threads: 2,
        ..GbdtConfig::default()
    };
    config.opts.low_precision = true;
    config.instance_sample_ratio = 0.8;
    config.collect_trace = true;
    let ps = PsConfig {
        num_servers: 3,
        num_partitions: 0,
        cost_model: CostModel::GIGABIT_LAN,
    };

    let a = train_distributed(&shards, &config, ps).unwrap();
    let b = train_distributed(&shards, &config, ps).unwrap();

    // Bit-identical ensembles.
    assert_eq!(a.model, b.model);
    // Bit-identical communication ledgers, phase by phase.
    assert_eq!(a.breakdown.comm, b.breakdown.comm);
    assert_eq!(a.report.comm, b.report.comm);
    assert_eq!(a.report.phases.len(), b.report.phases.len());
    for (pa, pb) in a.report.phases.iter().zip(&b.report.phases) {
        assert_eq!(pa.phase, pb.phase);
        assert_eq!(pa.comm, pb.comm, "phase {}", pa.phase.name());
    }
    // Identical per-round telemetry, timing fields excepted (wall-clock
    // compute seconds legitimately differ between reruns).
    assert_eq!(a.report.rounds.len(), b.report.rounds.len());
    for (ra, rb) in a.report.rounds.iter().zip(&b.report.rounds) {
        assert_eq!(ra.train_loss, rb.train_loss, "round {}", ra.round);
        assert_eq!(ra.hist_bytes_raw, rb.hist_bytes_raw);
        assert_eq!(ra.hist_bytes_wire, rb.hist_bytes_wire);
        assert_eq!(ra.max_quant_scale, rb.max_quant_scale);
        assert_eq!(ra.split_gains, rb.split_gains);
        assert_eq!(ra.node_instances, rb.node_instances);
    }
    // The canonical JSON document (timings omitted) is byte-identical.
    assert_eq!(a.report.canonical_json(), b.report.canonical_json());
    // So is the canonical trace: every event runs on the simulated clock,
    // so reruns replay the same event stream byte for byte.
    let (ta, tb) = (a.trace.as_ref().unwrap(), b.trace.as_ref().unwrap());
    assert_eq!(ta.canonical_chrome_json(), tb.canonical_chrome_json());

    // A different seed produces a different run (guards against the
    // stochastic paths silently ignoring the seed).
    let mut other = config.clone();
    other.seed ^= 0xDEAD_BEEF;
    let c = train_distributed(&shards, &other, ps).unwrap();
    assert_ne!(a.model, c.model);
}

/// Random sparse dataset + gradients + a candidate grid for histograms.
fn arb_hist_input() -> impl Strategy<Value = (Dataset, Vec<GradPair>)> {
    (1usize..60, 2usize..25).prop_flat_map(|(rows, features)| {
        let row_strategy = vec((0u32..features as u32, -3.0f32..3.0), 0..features);
        (
            vec(row_strategy, rows..=rows),
            vec((-5.0f32..5.0, 0.01f32..3.0), rows..=rows),
        )
            .prop_map(move |(raw, gh)| {
                let mut instances = Vec::new();
                for mut pairs in raw {
                    pairs.sort_unstable_by_key(|&(i, _)| i);
                    pairs.dedup_by_key(|&mut (i, _)| i);
                    instances.push(SparseInstance::from_pairs(pairs).unwrap());
                }
                let labels = vec![0.0; instances.len()];
                let ds = Dataset::from_instances(&instances, labels, features).unwrap();
                let grads = gh.into_iter().map(|(g, h)| GradPair { g, h }).collect();
                (ds, grads)
            })
    })
}

fn meta_for(ds: &Dataset) -> FeatureMeta {
    let cands: Vec<SplitCandidates> = (0..ds.num_features())
        .map(|_| SplitCandidates::from_boundaries(vec![-1.0, 0.0, 1.0]))
        .collect();
    FeatureMeta::all_features(&cands)
}

proptest! {
    /// The parallel batched builder is a pure performance optimization: for
    /// any thread count, batch size, instance subset, and sparse/dense mode
    /// it must agree with the sequential reference builder.
    #[test]
    fn batched_builder_matches_sequential(
        (ds, grads) in arb_hist_input(),
        threads in 1usize..9,
        batch_size in 1usize..40,
        subset_mask in vec(any::<bool>(), 60),
        sparse in any::<bool>(),
    ) {
        let instances: Vec<u32> = (0..ds.num_rows() as u32)
            .filter(|&i| subset_mask[i as usize % subset_mask.len()])
            .collect();
        let meta = meta_for(&ds);
        let reference = build_row(&ds, &instances, &grads, &meta, sparse);
        let bc = BatchConfig { batch_size, threads, sparse };
        let batched = build_row_batched(&ds, &instances, &grads, &meta, &bc);
        prop_assert_eq!(reference.len(), batched.len());
        for (i, (r, b)) in reference.iter().zip(&batched).enumerate() {
            // Partial rows merge in batch order, so only float associativity
            // separates the two (same tolerance as the builder's own tests).
            prop_assert!((r - b).abs() < 1e-3, "elem {}: {} vs {}", i, r, b);
        }
    }

    /// Different thread counts group the per-batch additions differently,
    /// so *across* thread counts only a float-associativity tolerance can
    /// hold **for the f32 builders tested here**. (For a fixed thread
    /// count the builder is exactly bit-deterministic — batches are
    /// statically striped, thread `t` owning batches `t, t+q, …` — which
    /// the stress test below pins with `assert_eq!`, no tolerance.) The
    /// quantized accumulator (`Optimizations::quantized_hist`) escapes the
    /// tolerance entirely: integer addition is associative, so its trained
    /// model bytes are asserted *bit-equal* across thread counts below.
    #[test]
    fn batched_builder_agrees_across_thread_counts(
        (ds, grads) in arb_hist_input(),
        batch_size in 1usize..20,
    ) {
        let instances: Vec<u32> = (0..ds.num_rows() as u32).collect();
        let meta = meta_for(&ds);
        let runs: Vec<Vec<f32>> = [2usize, 4, 8]
            .iter()
            .map(|&threads| {
                let bc = BatchConfig { batch_size, threads, sparse: true };
                build_row_batched(&ds, &instances, &grads, &meta, &bc)
            })
            .collect();
        for other in &runs[1..] {
            for (i, (a, b)) in runs[0].iter().zip(other).enumerate() {
                prop_assert!((a - b).abs() < 1e-3, "elem {}: {} vs {}", i, a, b);
            }
        }
    }
}

/// Repeat-run stress test for the headline PR-4 bugfix: with multi-threaded
/// batched builders engaged (batch size far below the shard size), both the
/// raw and the pre-binned histogram paths and the full training loop must
/// be **bit-identical** across reruns for every thread count. Before static
/// striping, the atomic batch cursor let OS scheduling decide which batches
/// each thread summed, so these exact assertions would flake.
#[test]
fn multithreaded_training_is_bit_identical_across_reruns() {
    use dimboost::core::binned::BinnedShard;
    use dimboost::core::model_io::model_to_bytes;

    let ds = generate(&SparseGenConfig::new(900, 80, 10, 31));
    let meta = meta_for(&ds);
    let grads: Vec<GradPair> = (0..ds.num_rows())
        .map(|i| GradPair {
            g: ((i % 13) as f32 - 6.0) / 3.0,
            h: 0.2 + (i % 5) as f32 * 0.4,
        })
        .collect();
    let instances: Vec<u32> = (0..ds.num_rows() as u32).collect();
    let binned = BinnedShard::build(&ds, &meta);

    for threads in [2, 4, 8] {
        // Raw (Algorithm 2) batched path.
        let bc = BatchConfig {
            batch_size: 48,
            threads,
            sparse: true,
        };
        let raw_first = build_row_batched(&ds, &instances, &grads, &meta, &bc);
        // Pre-binned batched path.
        let binned_first = binned.build_row_batched(&instances, &grads, &meta, 48, threads);
        for rep in 0..10 {
            let raw_again = build_row_batched(&ds, &instances, &grads, &meta, &bc);
            assert_eq!(
                raw_again, raw_first,
                "raw path, threads={threads} rep={rep}"
            );
            let binned_again = binned.build_row_batched(&instances, &grads, &meta, 48, threads);
            assert_eq!(
                binned_again, binned_first,
                "binned path, threads={threads} rep={rep}"
            );
        }
    }

    // End to end: the trained model's serialized bytes are rerun-identical
    // with the parallel batch builder genuinely multi-threaded (batch size
    // 64 over ~833-row shards → ≥ 13 batches per node build).
    for threads in [2, 4, 8] {
        let shards = partition_rows(&ds, 2).unwrap();
        let config = GbdtConfig {
            num_trees: 3,
            max_depth: 3,
            num_candidates: 8,
            learning_rate: 0.3,
            num_threads: threads,
            batch_size: 64,
            ..GbdtConfig::default()
        };
        let ps = PsConfig {
            num_servers: 2,
            num_partitions: 0,
            cost_model: CostModel::GIGABIT_LAN,
        };
        let reference = train_distributed(&shards, &config, ps).unwrap();
        let reference_bytes = model_to_bytes(&reference.model);
        for rep in 0..3 {
            let again = train_distributed(&shards, &config, ps).unwrap();
            assert_eq!(
                model_to_bytes(&again.model),
                reference_bytes,
                "threads={threads} rep={rep}"
            );
        }
    }

    // Quantized accumulation (DESIGN.md §15) upgrades the guarantee from
    // "bit-identical across reruns of one configuration" to "bit-identical
    // across *configurations*": integer sums are associative, so the model
    // bytes must not depend on the thread count, the batch size, or the
    // per-node vs layer-fused kernel at all. The f32 paths above cannot
    // make this claim — across thread counts they only agree to a
    // float-associativity tolerance.
    {
        let shards = partition_rows(&ds, 2).unwrap();
        let ps = PsConfig {
            num_servers: 2,
            num_partitions: 0,
            cost_model: CostModel::GIGABIT_LAN,
        };
        let quant_config = |threads: usize, batch_size: usize, fused: bool| {
            let mut config = GbdtConfig {
                num_trees: 3,
                max_depth: 3,
                num_candidates: 8,
                learning_rate: 0.3,
                num_threads: threads,
                batch_size,
                ..GbdtConfig::default()
            };
            config.opts.quantized_hist = true;
            config.opts.fused_layer = fused;
            config
        };
        let reference = train_distributed(&shards, &quant_config(1, 64, false), ps).unwrap();
        let reference_bytes = model_to_bytes(&reference.model);
        for threads in [1, 2, 4, 8] {
            for &(batch_size, fused) in &[(17, false), (64, true), (10_000, true)] {
                let run = train_distributed(&shards, &quant_config(threads, batch_size, fused), ps)
                    .unwrap();
                assert_eq!(
                    model_to_bytes(&run.model),
                    reference_bytes,
                    "quantized: threads={threads} batch={batch_size} fused={fused}"
                );
            }
        }
    }
}
