//! Robustness guarantees, end to end: fault injection may stretch the
//! simulated clock but must never change the learned model or the
//! communicated data; a run killed by a scripted crash must resume from
//! its checkpoint into a bit-identical final state; and faulted runs must
//! be exactly reproducible.

use dimboost::core::model_io::model_to_bytes;
use dimboost::core::{
    train_distributed_resilient, CheckpointOptions, FaultPlan, GbdtConfig, RobustOptions,
    TrainCheckpoint, TrainError, TrainOutput, CHECKPOINT_FILE,
};
use dimboost::data::partition::partition_rows;
use dimboost::data::synthetic::{generate, SparseGenConfig};
use dimboost::data::Dataset;
use dimboost::ps::PsConfig;
use dimboost::simnet::{CostModel, Phase};

fn shards() -> Vec<Dataset> {
    let ds = generate(&SparseGenConfig::new(1_200, 150, 8, 9));
    partition_rows(&ds, 3).unwrap()
}

fn config() -> GbdtConfig {
    GbdtConfig {
        num_trees: 5,
        max_depth: 4,
        num_candidates: 10,
        seed: 21,
        collect_trace: true,
        ..GbdtConfig::default()
    }
}

fn ps() -> PsConfig {
    PsConfig {
        num_servers: 2,
        num_partitions: 0,
        cost_model: CostModel::GIGABIT_LAN,
    }
}

fn run(robust: &RobustOptions) -> Result<TrainOutput, TrainError> {
    train_distributed_resilient(&shards(), &config(), ps(), None, robust)
}

/// The chaos plan: message loss in both directions, duplication, a
/// straggler on the histogram phase, and a server outage window.
const CHAOS: &str = "seed 77\n\
                     drop 0.15\n\
                     ack_drop 0.1\n\
                     dup 0.1\n\
                     straggler worker=1 factor=3.0 phase=build_histogram\n\
                     outage server=0 start=0.01 dur=0.05\n";

#[test]
fn faults_change_timing_but_not_the_model() {
    let clean = run(&RobustOptions::default()).unwrap();
    let faulted = run(&RobustOptions {
        fault_plan: Some(FaultPlan::parse(CHAOS).unwrap()),
        ..RobustOptions::default()
    })
    .unwrap();

    // Exactness invariant: the learned model is byte-identical.
    assert_eq!(
        model_to_bytes(&clean.model),
        model_to_bytes(&faulted.model),
        "fault injection changed the learned model"
    );
    // The useful communication is identical too: retries re-send the same
    // logical payloads, which the ledger counts once.
    assert_eq!(clean.breakdown.comm.bytes, faulted.breakdown.comm.bytes);
    assert_eq!(
        clean.breakdown.comm.packages,
        faulted.breakdown.comm.packages
    );
    for phase in Phase::ALL {
        let (c, f) = (clean.report.phase(phase), faulted.report.phase(phase));
        match (c, f) {
            (Some(c), Some(f)) => {
                assert_eq!(c.comm.bytes, f.comm.bytes, "{phase:?} bytes diverged");
                assert_eq!(
                    c.comm.packages, f.comm.packages,
                    "{phase:?} packages diverged"
                );
            }
            (None, None) => {}
            _ => panic!("{phase:?} present in only one report"),
        }
    }
    // Only the clock moved, and it moved forward.
    assert!(
        faulted.breakdown.comm.sim_time >= clean.breakdown.comm.sim_time,
        "faults should not speed the run up"
    );

    // The faults actually happened and were accounted.
    let summary = faulted.report.faults.expect("faulted run reports faults");
    assert!(summary.request_drops > 0, "plan produced no request drops");
    assert!(summary.retries > 0, "drops without retries");
    // Every redundant arrival (a duplicate, or a resend after a lost ack)
    // is absorbed by dedup — this identity is what keeps merges exact.
    assert_eq!(summary.dedup_hits, summary.ack_drops + summary.duplicates);
    assert!(clean.report.faults.is_none(), "clean run reported faults");

    // The effects are visible on the fault trace track.
    let trace = faulted.trace.as_ref().unwrap();
    assert!(
        trace
            .events
            .iter()
            .any(|e| e.track == dimboost::simnet::trace::Track::Fault),
        "no fault events on the timeline"
    );
}

#[test]
fn faulted_runs_are_exactly_reproducible() {
    let robust = RobustOptions {
        fault_plan: Some(FaultPlan::parse(CHAOS).unwrap()),
        ..RobustOptions::default()
    };
    let a = run(&robust).unwrap();
    let b = run(&robust).unwrap();
    assert_eq!(a.report.canonical_json(), b.report.canonical_json());
    assert_eq!(
        a.trace.as_ref().unwrap().canonical_chrome_json(),
        b.trace.as_ref().unwrap().canonical_chrome_json()
    );
    let (sa, sb) = (a.report.faults.unwrap(), b.report.faults.unwrap());
    assert_eq!(sa.request_drops, sb.request_drops);
    assert_eq!(sa.retries, sb.retries);
    assert_eq!(sa.backoff_secs, sb.backoff_secs);
}

#[test]
fn checkpoint_resume_is_bit_exact() {
    let dir = std::env::temp_dir().join("dimboost_fault_recovery_ckpt");
    let _ = std::fs::remove_dir_all(&dir);

    let reference = run(&RobustOptions::default()).unwrap();

    // Crash at round 2, checkpointing every round, under the chaos plan.
    let plan = format!("{CHAOS}crash round=2\n");
    let crashing = RobustOptions {
        fault_plan: Some(FaultPlan::parse(&plan).unwrap()),
        checkpoint: Some(CheckpointOptions::new(&dir)),
        resume: false,
    };
    let err = run(&crashing).unwrap_err();
    let TrainError::Crashed { round, checkpoint } = err else {
        panic!("expected a simulated crash, got {err}");
    };
    assert_eq!(round, 2);
    assert!(checkpoint.is_some(), "crash should leave a checkpoint");

    // Resume from the checkpoint under the same plan.
    let resumed = run(&RobustOptions {
        resume: true,
        ..crashing
    })
    .unwrap();
    assert_eq!(resumed.report.resumed_from_round, Some(2));

    // Final model and ledger phase totals are bit-identical to the
    // uninterrupted run.
    assert_eq!(
        model_to_bytes(&reference.model),
        model_to_bytes(&resumed.model),
        "resume diverged from the uninterrupted run"
    );
    assert_eq!(reference.breakdown.comm.bytes, resumed.breakdown.comm.bytes);
    assert_eq!(
        reference.breakdown.comm.packages,
        resumed.breakdown.comm.packages
    );
    for phase in Phase::ALL {
        if let (Some(r), Some(s)) = (reference.report.phase(phase), resumed.report.phase(phase)) {
            assert_eq!(r.comm.bytes, s.comm.bytes, "{phase:?} bytes diverged");
            assert_eq!(
                r.comm.packages, s.comm.packages,
                "{phase:?} packages diverged"
            );
        }
    }
    // Per-round telemetry (losses, gains, histogram bytes) also lines up
    // across the splice; only wall-clock compute differs by construction.
    let strip_wall = |rounds: &[dimboost::core::RoundRecord]| {
        rounds
            .iter()
            .map(|r| dimboost::core::RoundRecord {
                compute_secs: 0.0,
                ..r.clone()
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(
        strip_wall(&reference.report.rounds),
        strip_wall(&resumed.report.rounds)
    );
    // The loss curve agrees on every value; elapsed time differs because
    // the faulted legs ran on a stretched simulated clock.
    let losses = |out: &TrainOutput| -> Vec<(usize, f64)> {
        out.loss_curve
            .iter()
            .map(|p| (p.tree, p.train_loss))
            .collect()
    };
    assert_eq!(losses(&reference), losses(&resumed));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn abort_loss_is_typed_and_resumes_bit_exact_from_the_last_checkpoint() {
    let dir = std::env::temp_dir().join("dimboost_fault_recovery_abort");
    let _ = std::fs::remove_dir_all(&dir);

    let reference = run(&RobustOptions::default()).unwrap();

    // A permanent worker loss under `policy=abort` at round 3, checkpointing
    // every round, with the chaos faults still running underneath.
    let fatal = format!("{CHAOS}lose worker=1 round=3 policy=abort\n");
    let aborting = RobustOptions {
        fault_plan: Some(FaultPlan::parse(&fatal).unwrap()),
        checkpoint: Some(CheckpointOptions::new(&dir)),
        resume: false,
    };
    let err = run(&aborting).unwrap_err();
    let TrainError::WorkerLost { worker, round } = err else {
        panic!("expected a typed worker-loss abort, got {err}");
    };
    assert_eq!((worker, round), (1, 3));

    // The abort fires at the round-3 boundary, after the rolling checkpoint
    // for the three completed rounds was written.
    let ck = TrainCheckpoint::load_from_dir(&dir).expect("abort left no usable checkpoint");
    assert_eq!(ck.next_round, 3);

    // The operator removes the fatal `lose` line and resumes. The membership
    // digest deliberately excludes `lose` directives, so the edited plan
    // still matches the checkpoint fingerprint.
    let resumed = run(&RobustOptions {
        fault_plan: Some(FaultPlan::parse(CHAOS).unwrap()),
        checkpoint: Some(CheckpointOptions::new(&dir)),
        resume: true,
    })
    .unwrap();
    assert_eq!(resumed.report.resumed_from_round, Some(3));

    // Final state is bit-identical to the uninterrupted clean run.
    assert_eq!(
        model_to_bytes(&reference.model),
        model_to_bytes(&resumed.model),
        "resume after an aborted worker loss diverged from the uninterrupted run"
    );
    assert_eq!(reference.breakdown.comm.bytes, resumed.breakdown.comm.bytes);
    let losses = |out: &TrainOutput| -> Vec<(usize, f64)> {
        out.loss_curve
            .iter()
            .map(|p| (p.tree, p.train_loss))
            .collect()
    };
    assert_eq!(losses(&reference), losses(&resumed));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stale_checkpoint_tmp_file_is_overwritten() {
    // A crash between `fs::write(tmp)` and `fs::rename` leaves a stale (and
    // possibly garbage) temp file behind. The next rolling write must
    // overwrite it, not fail — and the renamed checkpoint must be the fresh
    // bytes, not the garbage.
    let dir = std::env::temp_dir().join("dimboost_fault_recovery_stale_tmp");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let tmp = dir.join(format!("{CHECKPOINT_FILE}.tmp"));
    std::fs::write(&tmp, b"garbage left by a previous crash").unwrap();

    let plan = format!("{CHAOS}crash round=2\n");
    let err = run(&RobustOptions {
        fault_plan: Some(FaultPlan::parse(&plan).unwrap()),
        checkpoint: Some(CheckpointOptions::new(&dir)),
        resume: false,
    })
    .unwrap_err();
    assert!(
        matches!(err, TrainError::Crashed { round: 2, .. }),
        "expected the scripted crash, got {err}"
    );

    // The stale temp was consumed by the rename and the rolling checkpoint
    // decodes cleanly.
    assert!(!tmp.exists(), "stale temp file survived the rolling write");
    let ck = TrainCheckpoint::load_from_dir(&dir).expect("checkpoint must decode");
    assert_eq!(ck.next_round, 2);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncated_checkpoint_resume_is_a_clean_error() {
    // A checkpoint cut short by a full disk or a crash mid-write must be
    // rejected with a typed `TrainError::Checkpoint` on resume — never a
    // panic or an out-of-bounds read.
    let dir = std::env::temp_dir().join("dimboost_fault_recovery_truncated");
    let _ = std::fs::remove_dir_all(&dir);

    let plan = format!("{CHAOS}crash round=2\n");
    let crashing = RobustOptions {
        fault_plan: Some(FaultPlan::parse(&plan).unwrap()),
        checkpoint: Some(CheckpointOptions::new(&dir)),
        resume: false,
    };
    run(&crashing).unwrap_err();

    let path = dir.join(CHECKPOINT_FILE);
    let full = std::fs::read(&path).unwrap();
    for keep in [full.len() / 2, 16, 0] {
        std::fs::write(&path, &full[..keep]).unwrap();
        let err = run(&RobustOptions {
            resume: true,
            ..crashing.clone()
        })
        .unwrap_err();
        assert!(
            matches!(err, TrainError::Checkpoint(_)),
            "truncation to {keep} bytes gave {err} instead of a checkpoint error"
        );
    }

    // Restoring the full bytes resumes normally again.
    std::fs::write(&path, &full).unwrap();
    let resumed = run(&RobustOptions {
        resume: true,
        ..crashing
    })
    .unwrap();
    assert_eq!(resumed.report.resumed_from_round, Some(2));

    std::fs::remove_dir_all(&dir).ok();
}
