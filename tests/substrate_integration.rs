//! Integration tests exercising the substrates together: sketches feeding
//! the PS, PCA feeding the trainer, and the LibSVM ETL feeding everything.

use dimboost::core::metrics::classification_error;
use dimboost::core::{train_single_machine, GbdtConfig};
use dimboost::data::libsvm::{read_libsvm, write_libsvm, LibsvmOptions};
use dimboost::data::partition::train_test_split;
use dimboost::data::synthetic::{generate, SparseGenConfig};
use dimboost::linalg::{Pca, PcaConfig};
use dimboost::ps::{ParameterServer, PsConfig};
use dimboost::sketch::{propose_candidates, GkSketch};

#[test]
fn sketch_merge_through_ps_matches_local_merge() {
    // Two workers sketch disjoint shards; the PS-merged sketches must
    // propose the same candidates as a local union sketch (within epsilon).
    let ds = generate(&SparseGenConfig::new(4_000, 50, 10, 21));
    let mid = 2_000;
    let ps = ParameterServer::new(50, PsConfig::default());

    let build = |lo: usize, hi: usize| -> Vec<GkSketch> {
        let mut s: Vec<GkSketch> = (0..50).map(|_| GkSketch::new(0.005)).collect();
        for i in lo..hi {
            for (f, v) in ds.row(i).iter() {
                s[f as usize].insert(v);
            }
        }
        s
    };
    ps.push_sketches(build(0, mid));
    ps.push_sketches(build(mid, ds.num_rows()));
    let mut merged = ps.pull_sketches();

    let mut local = build(0, ds.num_rows());
    for f in 0..50 {
        let a = propose_candidates(&mut merged[f], 10);
        let b = propose_candidates(&mut local[f], 10);
        // Same candidate count and close boundary values.
        assert_eq!(a.splits().len(), b.splits().len(), "feature {f}");
        let span = (merged[f].max().unwrap_or(1.0) - merged[f].min().unwrap_or(0.0)).abs() as f64;
        for (x, y) in a.splits().iter().zip(b.splits()) {
            assert!(
                ((x - y).abs() as f64) <= 0.05 * span.max(1e-6),
                "feature {f}: {x} vs {y}"
            );
        }
    }
}

#[test]
fn pca_pipeline_trains_in_reduced_space() {
    let ds = generate(&SparseGenConfig::new(3_000, 500, 20, 4));
    let (train, test) = train_test_split(&ds, 0.2, 4).unwrap();
    let pca = Pca::fit(
        &train,
        &PcaConfig {
            components: 16,
            iterations: 10,
            seed: 4,
        },
    )
    .unwrap();
    let red_train = pca.transform(&train);
    let red_test = pca.transform(&test);
    assert_eq!(red_train.num_features(), 16);

    let cfg = GbdtConfig {
        num_trees: 8,
        learning_rate: 0.3,
        ..GbdtConfig::default()
    };
    let model = train_single_machine(&red_train, &cfg).unwrap();
    let err = classification_error(&model.predict_dataset(&red_test), red_test.labels());
    // Reduced space keeps *some* signal but (Table 6) costs accuracy vs the
    // full space.
    assert!(err < 0.5, "PCA-space model error {err}");
    let full_model = train_single_machine(&train, &cfg).unwrap();
    let full_err = classification_error(&full_model.predict_dataset(&test), test.labels());
    assert!(full_err <= err + 0.02, "full {full_err} vs reduced {err}");
}

#[test]
fn libsvm_etl_feeds_training() {
    let ds = generate(&SparseGenConfig::new(1_500, 300, 15, 6));
    let mut buf = Vec::new();
    write_libsvm(&mut buf, &ds).unwrap();
    let opts = LibsvmOptions {
        num_features: Some(300),
        ..Default::default()
    };
    let loaded = read_libsvm(buf.as_slice(), opts).unwrap();
    assert_eq!(loaded, ds);

    let cfg = GbdtConfig {
        num_trees: 5,
        learning_rate: 0.3,
        ..GbdtConfig::default()
    };
    let model = train_single_machine(&loaded, &cfg).unwrap();
    let err = classification_error(&model.predict_dataset(&loaded), loaded.labels());
    assert!(err < 0.45, "train error {err}");
}
