//! Cross-crate integration tests: the full pipeline from synthetic data
//! through distributed training to evaluation, for DimBoost and every
//! baseline.

use dimboost::baselines::{train_baseline, train_tencentboost, BaselineKind};
use dimboost::core::metrics::{auc, classification_error, log_loss};
use dimboost::core::{train_distributed, train_single_machine, GbdtConfig};
use dimboost::data::partition::{partition_rows, train_test_split};
use dimboost::data::synthetic::{generate, rcv1_like, SparseGenConfig};
use dimboost::ps::PsConfig;
use dimboost::simnet::CostModel;

fn config() -> GbdtConfig {
    GbdtConfig {
        num_trees: 5,
        max_depth: 4,
        num_candidates: 12,
        learning_rate: 0.3,
        num_threads: 2,
        ..GbdtConfig::default()
    }
}

#[test]
fn five_system_bakeoff_on_rcv1_shape() {
    let ds = generate(&rcv1_like(5).with_rows(3_000).with_features(600));
    let (train, test) = train_test_split(&ds, 0.2, 5).unwrap();
    let shards = partition_rows(&train, 4).unwrap();
    let cfg = config();
    let ps = PsConfig {
        num_servers: 4,
        num_partitions: 0,
        cost_model: CostModel::GIGABIT_LAN,
    };

    let dim = train_distributed(&shards, &cfg, ps).unwrap();
    let tencent = train_tencentboost(&shards, &cfg, ps).unwrap();
    let mut errors = vec![
        (
            "DimBoost",
            classification_error(&dim.model.predict_dataset(&test), test.labels()),
        ),
        (
            "TencentBoost",
            classification_error(&tencent.model.predict_dataset(&test), test.labels()),
        ),
    ];
    for kind in [
        BaselineKind::Mllib,
        BaselineKind::Xgboost,
        BaselineKind::Lightgbm,
    ] {
        let out = train_baseline(kind, &shards, &cfg, CostModel::GIGABIT_LAN).unwrap();
        errors.push((
            kind.name(),
            classification_error(&out.model.predict_dataset(&test), test.labels()),
        ));
    }
    for &(name, err) in &errors {
        assert!(err < 0.45, "{name} error {err} did not beat the baseline");
    }
    // All systems land in the same accuracy neighbourhood.
    let min = errors.iter().map(|&(_, e)| e).fold(f64::INFINITY, f64::min);
    let max = errors.iter().map(|&(_, e)| e).fold(0.0, f64::max);
    assert!(max - min < 0.08, "systems diverged: {errors:?}");
}

#[test]
fn dimboost_moves_fewer_bytes_than_tencentboost() {
    // The headline communication claim: compressed scatter-style pushes +
    // O(1) split pulls vs full-precision pushes + whole-histogram pulls.
    let ds = generate(&SparseGenConfig::new(2_000, 2_000, 25, 3));
    let shards = partition_rows(&ds, 4).unwrap();
    let cfg = config();
    let ps = PsConfig {
        num_servers: 4,
        num_partitions: 0,
        cost_model: CostModel::GIGABIT_LAN,
    };
    let dim = train_distributed(&shards, &cfg, ps).unwrap();
    let tencent = train_tencentboost(&shards, &cfg, ps).unwrap();
    assert!(
        dim.breakdown.comm.bytes * 2 < tencent.breakdown.comm.bytes,
        "DimBoost {} vs TencentBoost {}",
        dim.breakdown.comm.bytes,
        tencent.breakdown.comm.bytes
    );
    assert!(dim.breakdown.comm.sim_time < tencent.breakdown.comm.sim_time);
}

#[test]
fn single_machine_facade_api() {
    // The README/docs quickstart path, end to end through the facade.
    let dataset = generate(&SparseGenConfig::new(2_000, 400, 20, 42));
    let (train, test) = train_test_split(&dataset, 0.1, 42).unwrap();
    let cfg = GbdtConfig {
        num_trees: 8,
        learning_rate: 0.3,
        ..GbdtConfig::default()
    };
    let model = train_single_machine(&train, &cfg).unwrap();
    let probs = model.predict_dataset(&test);
    assert!(classification_error(&probs, test.labels()) < 0.42);
    assert!(log_loss(&probs, test.labels()) < std::f64::consts::LN_2);
    assert!(auc(&probs, test.labels()) > 0.6);
    assert!(model.check_consistency().is_ok());
}

#[test]
fn worker_count_does_not_change_accuracy_materially() {
    let ds = generate(&SparseGenConfig::new(3_000, 300, 15, 8));
    let (train, test) = train_test_split(&ds, 0.2, 8).unwrap();
    let cfg = config();
    let mut errs = Vec::new();
    for w in [1usize, 2, 5, 8] {
        let shards = partition_rows(&train, w).unwrap();
        let ps = PsConfig {
            num_servers: w,
            num_partitions: 0,
            cost_model: CostModel::GIGABIT_LAN,
        };
        let out = train_distributed(&shards, &cfg, ps).unwrap();
        errs.push(classification_error(
            &out.model.predict_dataset(&test),
            test.labels(),
        ));
    }
    let min = errs.iter().copied().fold(f64::INFINITY, f64::min);
    let max = errs.iter().copied().fold(0.0, f64::max);
    assert!(
        max - min < 0.06,
        "accuracy varies too much with workers: {errs:?}"
    );
}

#[test]
fn feature_prefixes_improve_accuracy() {
    // The Table 5 shape as an invariant: more features, better accuracy
    // (allowing small noise at test scale).
    let ds = generate(&SparseGenConfig::new(6_000, 2_000, 25, 13));
    let cfg = GbdtConfig {
        num_trees: 8,
        learning_rate: 0.3,
        ..config()
    };
    let mut errs = Vec::new();
    for m in [100usize, 600, 2_000] {
        let sub = ds.restrict_features(m);
        let (train, test) = train_test_split(&sub, 0.2, 13).unwrap();
        let model = train_single_machine(&train, &cfg).unwrap();
        errs.push(classification_error(
            &model.predict_dataset(&test),
            test.labels(),
        ));
    }
    assert!(
        errs[2] < errs[0] - 0.02,
        "full features should clearly beat the 5% prefix: {errs:?}"
    );
}
