//! The layer-fused histogram kernel's contract, end to end.
//!
//! The fused kernel (`dimboost::core::fused`) builds every build node of a
//! tree layer in one statically-striped pass over the binned CSR. Its
//! guarantees, pinned here at both the kernel and the full-trainer level:
//!
//! * at `threads == 1` it is **bit-equal** to the per-node binned path —
//!   same trained model bytes, `assert_eq!`, no tolerances;
//! * for any fixed `(threads, batch_size)` it is bit-identical across
//!   reruns (≥10 reps at threads {2, 4, 8});
//! * combined with `hist_subtraction` it matches direct construction the
//!   same way the per-node path does;
//! * neither training nor batch scoring spawns per-call OS threads — both
//!   share one persistent pool per process.

use dimboost::core::binned::BinnedShard;
use dimboost::core::fused::{build_layer, LayerPositions, NO_NODE};
use dimboost::core::hist_build::new_row;
use dimboost::core::loss::GradPair;
use dimboost::core::metrics::classification_error;
use dimboost::core::model_io::model_to_bytes;
use dimboost::core::{pool, train_distributed, FeatureMeta, GbdtConfig};
use dimboost::data::partition::{partition_rows, train_test_split};
use dimboost::data::synthetic::{generate, SparseGenConfig};
use dimboost::data::Dataset;
use dimboost::ps::PsConfig;
use dimboost::simnet::CostModel;
use dimboost::sketch::SplitCandidates;
use proptest::collection::vec;
use proptest::prelude::*;

fn meta_for(ds: &Dataset) -> FeatureMeta {
    let cands: Vec<SplitCandidates> = (0..ds.num_features())
        .map(|_| SplitCandidates::from_boundaries(vec![-0.8, 0.1, 0.9]))
        .collect();
    FeatureMeta::all_features(&cands)
}

fn ps_config(servers: usize) -> PsConfig {
    PsConfig {
        num_servers: servers,
        num_partitions: 0,
        cost_model: CostModel::GIGABIT_LAN,
    }
}

fn fused_config(threads: usize) -> GbdtConfig {
    let mut config = GbdtConfig {
        num_trees: 3,
        max_depth: 3,
        num_candidates: 8,
        learning_rate: 0.3,
        num_threads: threads,
        batch_size: 64,
        ..GbdtConfig::default()
    };
    config.opts.fused_layer = true;
    config
}

/// Acceptance anchor: with one thread, training with the fused kernel must
/// produce **bit-identical model bytes** to the per-node binned path — for
/// every combination of the node-index ablation and histogram subtraction,
/// and under row subsampling.
#[test]
fn fused_threads1_model_bytes_equal_per_node_path() {
    let ds = generate(&SparseGenConfig::new(1_200, 90, 10, 61));
    let shards = partition_rows(&ds, 2).unwrap();
    for (node_index, hist_subtraction, row_sample) in [
        (true, false, 1.0),
        (false, false, 1.0),
        (true, true, 1.0),
        (false, true, 1.0),
        (true, false, 0.8),
    ] {
        let mut per_node = fused_config(1);
        per_node.opts.fused_layer = false;
        // The per-node reference runs over the same binned representation
        // the fused kernel uses.
        per_node.opts.pre_binning = true;
        per_node.opts.node_index = node_index;
        per_node.opts.hist_subtraction = hist_subtraction;
        per_node.instance_sample_ratio = row_sample;

        let mut fused = per_node.clone();
        fused.opts.fused_layer = true;

        let a = train_distributed(&shards, &per_node, ps_config(2)).unwrap();
        let b = train_distributed(&shards, &fused, ps_config(2)).unwrap();
        assert_eq!(
            model_to_bytes(&a.model),
            model_to_bytes(&b.model),
            "node_index={node_index} hist_subtraction={hist_subtraction} row_sample={row_sample}"
        );
    }
}

/// ≥10-rep stress: fused multi-threaded end-to-end training must be
/// bit-identical across reruns at every thread count (same shape as
/// `multithreaded_training_is_bit_identical_across_reruns`).
#[test]
fn fused_multithreaded_training_bit_identical_across_reruns() {
    let ds = generate(&SparseGenConfig::new(900, 80, 10, 37));
    let shards = partition_rows(&ds, 2).unwrap();
    for threads in [2, 4, 8] {
        let config = fused_config(threads);
        let reference = train_distributed(&shards, &config, ps_config(2)).unwrap();
        let reference_bytes = model_to_bytes(&reference.model);
        let reference_report = reference.report.canonical_json();
        for rep in 0..10 {
            let again = train_distributed(&shards, &config, ps_config(2)).unwrap();
            assert_eq!(
                model_to_bytes(&again.model),
                reference_bytes,
                "threads={threads} rep={rep}"
            );
            assert_eq!(
                again.report.canonical_json(),
                reference_report,
                "threads={threads} rep={rep}"
            );
        }
    }
}

/// `fused_layer + hist_subtraction` must match direct construction the
/// same way `hist_subtraction_matches_direct_construction` pins for the
/// per-node path: near-identical test error, strictly fewer pushed bytes.
#[test]
fn fused_with_subtraction_matches_direct_construction() {
    let ds = generate(&SparseGenConfig::new(2_000, 150, 12, 19));
    let (train, test) = train_test_split(&ds, 0.2, 19).unwrap();
    let shards = partition_rows(&train, 3).unwrap();

    let mut direct_cfg = GbdtConfig {
        num_trees: 5,
        max_depth: 4,
        num_candidates: 10,
        learning_rate: 0.3,
        num_threads: 2,
        ..GbdtConfig::default()
    };
    direct_cfg.opts.low_precision = false;
    direct_cfg.opts.fused_layer = true;
    let direct = train_distributed(&shards, &direct_cfg, ps_config(3)).unwrap();

    let mut sub_cfg = direct_cfg.clone();
    sub_cfg.opts.hist_subtraction = true;
    let sub = train_distributed(&shards, &sub_cfg, ps_config(3)).unwrap();

    let err_direct = classification_error(&direct.model.predict_dataset(&test), test.labels());
    let err_sub = classification_error(&sub.model.predict_dataset(&test), test.labels());
    assert!(
        (err_direct - err_sub).abs() < 0.03,
        "direct {err_direct} vs subtraction {err_sub}"
    );
    assert!(
        sub.breakdown.comm.bytes < direct.breakdown.comm.bytes,
        "subtraction {} should move fewer bytes than {}",
        sub.breakdown.comm.bytes,
        direct.breakdown.comm.bytes
    );
}

/// An undersized block budget must fall back to per-node builds — and,
/// since both paths agree bit-for-bit at one thread, produce the same
/// model; telemetry (hist bytes, per-node instance counts) must be
/// identical in every configuration.
#[test]
fn budget_fallback_is_transparent() {
    let ds = generate(&SparseGenConfig::new(800, 60, 8, 53));
    let shards = partition_rows(&ds, 2).unwrap();
    let fused = fused_config(1);
    let mut starved = fused.clone();
    starved.fused_block_budget = 0; // every layer falls back
    let a = train_distributed(&shards, &fused, ps_config(2)).unwrap();
    let b = train_distributed(&shards, &starved, ps_config(2)).unwrap();
    assert_eq!(model_to_bytes(&a.model), model_to_bytes(&b.model));
    assert_eq!(a.report.canonical_json(), b.report.canonical_json());
}

/// The acceptance pin for "no per-call thread spawns on hot paths": a full
/// multi-threaded training run plus a batch scoring run may construct at
/// most one pool (the shared global); repeating both adds zero.
#[test]
fn training_and_serving_share_one_pool() {
    let ds = generate(&SparseGenConfig::new(600, 50, 8, 71));
    let shards = partition_rows(&ds, 2).unwrap();
    let mut config = fused_config(4);
    config.batch_size = 25; // force genuinely multi-threaded builds
    let out = train_distributed(&shards, &config, ps_config(2)).unwrap();
    let compiled = dimboost::predict::CompiledModel::compile(&out.model);
    let engine = dimboost::predict::EngineConfig {
        threads: 4,
        batch_size: 32,
    };
    let first = dimboost::predict::score_raw(&compiled, &ds, &engine);
    let baseline = pool::pool_constructions();
    // Everything after the global pool exists must reuse it: more training,
    // more scoring, zero new pools.
    let again = train_distributed(&shards, &config, ps_config(2)).unwrap();
    assert_eq!(model_to_bytes(&again.model), model_to_bytes(&out.model));
    assert_eq!(dimboost::predict::score_raw(&compiled, &ds, &engine), first);
    assert_eq!(
        pool::pool_constructions(),
        baseline,
        "hot paths constructed a new thread pool"
    );
    // And the global pool accounts for at most one construction overall
    // (other tests in this binary may never have touched it).
    assert!(baseline <= 1, "expected at most one pool, saw {baseline}");
}

fn arb_layer_input() -> impl Strategy<Value = (Dataset, Vec<GradPair>, Vec<u32>)> {
    // 60 rows × 12 features with random sparsity, gradients, and a random
    // node assignment per row (4 slots plus "no node").
    (
        vec(vec((0u32..12, -1.5f32..1.5), 0..8), 60),
        vec((-2.0f32..2.0, 0.05f32..2.0), 60),
        vec(0u32..5, 60),
    )
        .prop_map(|(rows, gh, raw_slots)| {
            let instances: Vec<dimboost::data::SparseInstance> = rows
                .into_iter()
                .map(|mut pairs| {
                    pairs.sort_unstable_by_key(|&(f, _)| f);
                    pairs.dedup_by_key(|&mut (f, _)| f);
                    dimboost::data::SparseInstance::from_pairs(pairs).unwrap()
                })
                .collect();
            let labels = vec![0.0; instances.len()];
            let ds = Dataset::from_instances(&instances, labels, 12).unwrap();
            let grads = gh.into_iter().map(|(g, h)| GradPair { g, h }).collect();
            let slots = raw_slots
                .into_iter()
                .map(|s| if s == 4 { NO_NODE } else { s })
                .collect();
            (ds, grads, slots)
        })
}

proptest! {
    /// Kernel-level pin of the fused contract for random shards, node
    /// partitions, thread counts, and batch sizes: the single-threaded
    /// kernel is bit-equal to the per-node binned reference
    /// (`assert_eq!`), every multi-threaded configuration is bit-equal on
    /// rerun, and — since different thread counts regroup f32 additions —
    /// multi-threaded output matches the reference within the builders'
    /// shared associativity tolerance.
    #[test]
    fn fused_kernel_matches_per_node_reference(
        (ds, grads, slots) in arb_layer_input(),
        threads in 1usize..9,
        batch_size in 1usize..40,
    ) {
        let meta = meta_for(&ds);
        let binned = BinnedShard::build(&ds, &meta);
        let mut counts = vec![0u64; 4];
        for &s in &slots {
            if s != NO_NODE {
                counts[s as usize] += 1;
            }
        }
        let positions = LayerPositions { slots: slots.clone(), counts };
        let row_len = meta.layout().row_len();

        // Per-node reference: build_into over each slot's (ascending)
        // instance list.
        let mut reference = Vec::with_capacity(4 * row_len);
        for s in 0..4u32 {
            let instances: Vec<u32> = (0..ds.num_rows() as u32)
                .filter(|&i| slots[i as usize] == s)
                .collect();
            let mut row = new_row(&meta);
            binned.build_into(&instances, &grads, &mut row);
            reference.extend_from_slice(&row);
        }

        let single = build_layer(&binned, &positions, &grads, &meta, batch_size, 1);
        prop_assert_eq!(&single, &reference, "threads=1 must be bit-equal");

        let multi = build_layer(&binned, &positions, &grads, &meta, batch_size, threads);
        let rerun = build_layer(&binned, &positions, &grads, &meta, batch_size, threads);
        prop_assert_eq!(&multi, &rerun, "rerun must be bit-identical");
        for (i, (a, b)) in multi.iter().zip(&reference).enumerate() {
            prop_assert!((a - b).abs() < 1e-3, "elem {}: {} vs {}", i, a, b);
        }
    }
}
