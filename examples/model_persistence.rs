//! Model persistence and inspection: train, save to the versioned binary
//! format, reload, verify predictions are identical, and inspect the model
//! (feature importance, tree structure) — the FINISH phase's "leader worker
//! outputs the trained model", plus what a consumer does with it.
//!
//! ```sh
//! cargo run --release --example model_persistence
//! ```

use dimboost::core::{load_model_file, save_model_file, train_single_machine, GbdtConfig};
use dimboost::data::synthetic::{generate, SparseGenConfig};

fn main() {
    let mut cfg_data = SparseGenConfig::new(5_000, 800, 20, 33);
    cfg_data.informative = 12; // concentrate the signal so importance is sharp
    cfg_data.informative_bias = 0.7;
    let dataset = generate(&cfg_data);

    let config = GbdtConfig {
        num_trees: 10,
        max_depth: 4,
        learning_rate: 0.3,
        ..GbdtConfig::default()
    };
    let model = train_single_machine(&dataset, &config).expect("training failed");

    // Save and reload.
    let path = std::env::temp_dir().join("dimboost_persistence_example.model");
    save_model_file(&model, &path).expect("save failed");
    let size = std::fs::metadata(&path).expect("stat").len();
    println!(
        "saved {} trees to {} ({} bytes)",
        model.num_trees(),
        path.display(),
        size
    );

    let reloaded = load_model_file(&path).expect("load failed");
    assert_eq!(reloaded, model, "roundtrip must be lossless");
    assert_eq!(
        reloaded.predict_dataset(&dataset),
        model.predict_dataset(&dataset),
        "reloaded model must predict identically"
    );
    println!("reloaded model is bit-identical");

    // Inspect: gain-based importance concentrates on the informative features.
    println!("\ntop features by total split gain:");
    for (f, gain) in model.top_features(8) {
        let count = model.feature_split_counts()[f as usize];
        println!("  f{f:<6} gain {gain:>8.3}  ({count} splits)");
    }

    println!("\nfirst tree:");
    print!("{}", model.trees()[0].dump());

    std::fs::remove_file(&path).ok();
}
