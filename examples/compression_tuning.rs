//! Tuning the low-precision histogram bit width (Section 6.1): sweep
//! `compress_bits` and observe the accuracy/traffic trade-off the paper
//! resolves at d = 8.
//!
//! ```sh
//! cargo run --release --example compression_tuning
//! ```

use dimboost::core::metrics::classification_error;
use dimboost::core::{train_distributed, GbdtConfig};
use dimboost::data::partition::{partition_rows, train_test_split};
use dimboost::data::synthetic::{generate, SparseGenConfig};
use dimboost::ps::PsConfig;
use dimboost::simnet::CostModel;

fn main() {
    let dataset = generate(&SparseGenConfig::new(8_000, 3_000, 40, 11));
    let (train, test) = train_test_split(&dataset, 0.1, 11).expect("split failed");
    let shards = partition_rows(&train, 4).expect("partitioning failed");
    let ps = PsConfig {
        num_servers: 4,
        num_partitions: 0,
        cost_model: CostModel::GIGABIT_LAN,
    };

    let base = GbdtConfig {
        num_trees: 8,
        max_depth: 4,
        learning_rate: 0.3,
        ..GbdtConfig::default()
    };

    println!(
        "{:<14} {:>10} {:>12} {:>10}",
        "bits", "test err", "bytes", "comm time"
    );
    // Full precision reference.
    let mut cfg = base.clone();
    cfg.opts.low_precision = false;
    let full = train_distributed(&shards, &cfg, ps).expect("training failed");
    report("32 (full)", &full, &test);

    for bits in [16u8, 8, 4, 2] {
        let mut cfg = base.clone();
        cfg.opts.low_precision = true;
        cfg.compress_bits = bits;
        let out = train_distributed(&shards, &cfg, ps).expect("training failed");
        report(&bits.to_string(), &out, &test);
    }
    println!("\nthe paper's choice d=8 keeps accuracy while cutting histogram traffic ~4x.");
}

fn report(label: &str, out: &dimboost::core::TrainOutput, test: &dimboost::data::Dataset) {
    let err = classification_error(&out.model.predict_dataset(test), test.labels());
    println!(
        "{:<14} {:>10.4} {:>10.1}MiB {:>9.2}s",
        label,
        err,
        out.breakdown.comm.bytes as f64 / (1 << 20) as f64,
        out.breakdown.comm.sim_time.seconds()
    );
}
