//! Distributed training on the simulated cluster: 8 workers, a co-located
//! parameter server group, and the 1 GbE cost model — the full DimBoost
//! execution plan of Figure 7.
//!
//! ```sh
//! cargo run --release --example distributed_training
//! ```

use dimboost::core::metrics::classification_error;
use dimboost::core::{train_distributed, GbdtConfig};
use dimboost::data::partition::{partition_rows, train_test_split};
use dimboost::data::synthetic::{generate, synthesis_like};
use dimboost::ps::PsConfig;
use dimboost::simnet::CostModel;

fn main() {
    let dataset = generate(&synthesis_like(7).with_rows(12_000).with_features(5_000));
    let (train, test) = train_test_split(&dataset, 0.1, 7).expect("split failed");

    let workers = 8;
    let shards = partition_rows(&train, workers).expect("partitioning failed");
    println!(
        "cluster: {workers} workers x {} rows, {} parameter servers (co-located)",
        shards[0].num_rows(),
        workers
    );

    let config = GbdtConfig {
        num_trees: 10,
        max_depth: 5,
        learning_rate: 0.3,
        collect_trace: true,
        ..GbdtConfig::default()
    };

    let ps = PsConfig {
        num_servers: workers,
        num_partitions: 0, // one partition per server, the paper's default
        cost_model: CostModel::GIGABIT_LAN,
    };
    let out = train_distributed(&shards, &config, ps).expect("training failed");

    println!("\nrun breakdown:");
    println!(
        "  computation (wall, max across workers): {:.3}s",
        out.breakdown.compute_secs
    );
    println!(
        "  communication (simulated 1GbE): {:.3}s over {} ({} packages)",
        out.breakdown.comm.sim_time.seconds(),
        human_bytes(out.breakdown.comm.bytes),
        out.breakdown.comm.packages
    );

    println!("\nconvergence:");
    for p in &out.loss_curve {
        println!(
            "  tree {:>2}: train loss {:.4} at t={:.2}s",
            p.tree, p.train_loss, p.elapsed_secs
        );
    }

    let err = classification_error(&out.model.predict_dataset(&test), test.labels());
    println!("\ntest error: {err:.4}");

    println!("\nper-phase summary (p50/p99 across workers):");
    print!("{}", out.report.summary());

    if let Some(trace) = &out.trace {
        print!("\n{}", trace.timeline());
        let path = std::env::temp_dir().join("distributed_training.trace.json");
        match std::fs::write(&path, trace.chrome_json()) {
            Ok(()) => println!(
                "wrote {} — load it in Perfetto (ui.perfetto.dev) or chrome://tracing",
                path.display()
            ),
            Err(e) => eprintln!("could not write trace {}: {e}", path.display()),
        }
    }
}

fn human_bytes(b: u64) -> String {
    if b > 1 << 20 {
        format!("{:.1} MiB", b as f64 / (1 << 20) as f64)
    } else {
        format!("{:.1} KiB", b as f64 / 1024.0)
    }
}
