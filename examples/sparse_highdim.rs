//! Sparsity-aware histogram construction (Algorithm 2) in isolation: build
//! the root-node histogram of a high-dimensional sparse dataset with the
//! traditional dense pass and with DimBoost's sparse pass, verify they are
//! identical, and compare the cost.
//!
//! ```sh
//! cargo run --release --example sparse_highdim
//! ```

use std::time::Instant;

use dimboost::core::hist_build::build_row;
use dimboost::core::loss::loss_for;
use dimboost::core::{FeatureMeta, LossKind};
use dimboost::data::synthetic::{gender_like, generate};
use dimboost::sketch::{propose_candidates, GkSketch};

fn main() {
    // Gender-shaped: very sparse, many features.
    let dataset = generate(&gender_like(3).with_rows(15_000).with_features(10_000));
    println!(
        "dataset: {} rows x {} features, z = {:.1} nonzeros/row (z/M = {:.4})",
        dataset.num_rows(),
        dataset.num_features(),
        dataset.avg_nnz(),
        dataset.avg_nnz() / dataset.num_features() as f64
    );

    // Propose split candidates from per-feature sketches (CREATE_SKETCH /
    // PULL_SKETCH), then build the feature metadata.
    let mut sketches: Vec<GkSketch> = (0..dataset.num_features())
        .map(|_| GkSketch::new(0.01))
        .collect();
    for (row, _) in dataset.iter_rows() {
        for (f, v) in row.iter() {
            sketches[f as usize].insert(v);
        }
    }
    let candidates: Vec<_> = sketches
        .iter_mut()
        .map(|s| propose_candidates(s, 20))
        .collect();
    let meta = FeatureMeta::all_features(&candidates);
    println!("histogram row: {} f32 values", meta.layout().row_len());

    // Root-node gradients (logistic loss at score 0).
    let loss = loss_for(LossKind::Logistic);
    let grads: Vec<_> = dataset
        .labels()
        .iter()
        .map(|&y| loss.grad(0.0, y))
        .collect();
    let instances: Vec<u32> = (0..dataset.num_rows() as u32).collect();

    let t = Instant::now();
    let dense = build_row(&dataset, &instances, &grads, &meta, false);
    let t_dense = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let sparse = build_row(&dataset, &instances, &grads, &meta, true);
    let t_sparse = t.elapsed().as_secs_f64();

    let max_diff = dense
        .iter()
        .zip(&sparse)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    println!("\ndense pass (O(M*N)):          {:.3}s", t_dense);
    println!("sparsity-aware (O(z*N + M)):  {:.3}s", t_sparse);
    println!(
        "speedup: {:.0}x, max element difference: {max_diff:.2e}",
        t_dense / t_sparse
    );
    assert!(max_diff < 1e-2, "builders diverged");
    println!("\nboth passes produce the same histogram — Algorithm 2 is exact.");
}
