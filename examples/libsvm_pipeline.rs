//! File-based pipeline: write a dataset in LibSVM format (the format RCV1
//! and most public benchmarks ship in), read it back with the ETL options,
//! and train on it — the path a user with a real RCV1 file would take.
//!
//! ```sh
//! cargo run --release --example libsvm_pipeline
//! ```

use dimboost::core::metrics::classification_error;
use dimboost::core::{train_single_machine, GbdtConfig};
use dimboost::data::libsvm::{read_libsvm_file, write_libsvm, LibsvmOptions};
use dimboost::data::partition::train_test_split;
use dimboost::data::synthetic::{generate, rcv1_like};

fn main() {
    // Stand-in for downloading RCV1: synthesize a shape-compatible file.
    let dataset = generate(&rcv1_like(9).with_rows(5_000).with_features(2_000));
    let path = std::env::temp_dir().join("dimboost_rcv1_like.libsvm");
    {
        let file = std::fs::File::create(&path).expect("create temp file");
        write_libsvm(file, &dataset).expect("write libsvm");
    }
    let size = std::fs::metadata(&path).expect("stat").len();
    println!(
        "wrote {} ({} rows) to {}",
        human(size),
        dataset.num_rows(),
        path.display()
    );

    // ETL: read with 1-based indices and binarized labels, declaring the
    // true dimensionality (trailing all-zero columns are not inferable).
    let opts = LibsvmOptions {
        one_based: true,
        num_features: Some(dataset.num_features()),
        binarize_labels: true,
    };
    let loaded = read_libsvm_file(&path, opts).expect("read libsvm");
    assert_eq!(loaded, dataset, "roundtrip must be lossless");
    println!("reloaded dataset matches the original bit-for-bit");

    let (train, test) = train_test_split(&loaded, 0.1, 9).expect("split");
    let config = GbdtConfig {
        num_trees: 10,
        learning_rate: 0.3,
        ..GbdtConfig::default()
    };
    let model = train_single_machine(&train, &config).expect("training failed");
    let err = classification_error(&model.predict_dataset(&test), test.labels());
    println!("test error after 10 trees: {err:.4}");

    std::fs::remove_file(&path).ok();
}

fn human(b: u64) -> String {
    format!("{:.1} KiB", b as f64 / 1024.0)
}
