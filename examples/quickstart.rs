//! Quickstart: train a GBDT model on a synthetic high-dimensional dataset
//! and evaluate it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dimboost::core::metrics::{auc, classification_error, log_loss};
use dimboost::core::{train_single_machine, GbdtConfig};
use dimboost::data::partition::train_test_split;
use dimboost::data::synthetic::{generate, SparseGenConfig};

fn main() {
    // 10,000 instances, 2,000 features, ~30 nonzeros per row.
    let dataset = generate(&SparseGenConfig::new(10_000, 2_000, 30, 42));
    println!(
        "dataset: {} rows x {} features, {:.1} nonzeros/row ({:.3}% dense)",
        dataset.num_rows(),
        dataset.num_features(),
        dataset.avg_nnz(),
        100.0 * dataset.density()
    );

    let (train, test) = train_test_split(&dataset, 0.1, 42).expect("split failed");

    let config = GbdtConfig {
        num_trees: 15,
        max_depth: 5,
        learning_rate: 0.3,
        ..GbdtConfig::default()
    };

    let model = train_single_machine(&train, &config).expect("training failed");
    println!(
        "trained {} trees (depth <= {}), {} leaves in tree 0",
        model.num_trees(),
        config.max_depth,
        model.trees()[0].num_leaves()
    );

    let probs = model.predict_dataset(&test);
    println!(
        "test error: {:.4}",
        classification_error(&probs, test.labels())
    );
    println!("test logloss: {:.4}", log_loss(&probs, test.labels()));
    println!("test AUC: {:.4}", auc(&probs, test.labels()));
}
