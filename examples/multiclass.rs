//! Multiclass classification with the softmax objective (extension beyond
//! the paper): each boosting round grows one tree per class; prediction is
//! the argmax of the per-class score columns.
//!
//! ```sh
//! cargo run --release --example multiclass
//! ```

use dimboost::core::metrics::{multiclass_error, multiclass_log_loss};
use dimboost::core::{train_distributed_with_eval, EvalOptions, GbdtConfig, LossKind};
use dimboost::data::partition::{partition_rows, train_test_split};
use dimboost::data::synthetic::{generate, LabelKind, SparseGenConfig};
use dimboost::ps::PsConfig;
use dimboost::simnet::CostModel;

fn main() {
    let classes = 4u32;
    let cfg_data = SparseGenConfig::new(12_000, 1_500, 25, 21)
        .with_label_kind(LabelKind::Multiclass { classes });
    let dataset = generate(&cfg_data);
    let (train, test) = train_test_split(&dataset, 0.15, 21).expect("split failed");
    println!(
        "dataset: {} rows x {} features, {} classes",
        dataset.num_rows(),
        dataset.num_features(),
        classes
    );

    let shards = partition_rows(&train, 4).expect("partitioning failed");
    let config = GbdtConfig {
        num_trees: 12, // boosting rounds => 12 * 4 trees total
        max_depth: 5,
        learning_rate: 0.4,
        loss: LossKind::Softmax { classes },
        ..GbdtConfig::default()
    };
    let ps = PsConfig {
        num_servers: 4,
        num_partitions: 0,
        cost_model: CostModel::GIGABIT_LAN,
    };
    let ev = EvalOptions {
        dataset: &test,
        early_stopping_rounds: Some(4),
    };
    let out = train_distributed_with_eval(&shards, &config, ps, Some(ev)).expect("training failed");

    println!(
        "trained {} trees ({} rounds x {} classes), best round {:?}",
        out.model.num_trees(),
        out.model.num_trees() / classes as usize,
        classes,
        out.best_iteration
    );
    for (t, e) in out.loss_curve.iter().zip(&out.eval_curve) {
        println!(
            "  round {:>2}: train mlogloss {:.4}, eval mlogloss {:.4}",
            t.tree / classes as usize,
            t.train_loss,
            e.train_loss
        );
    }

    let preds = out.model.predict_dataset(&test);
    let probas = out.model.predict_proba_dataset(&test);
    println!(
        "\ntest error {:.4} (random guess = {:.4}), test mlogloss {:.4}",
        multiclass_error(&preds, test.labels()),
        1.0 - 1.0 / classes as f64,
        multiclass_log_loss(&probas, test.labels())
    );
    println!(
        "top features by gain: {:?}",
        out.model
            .top_features(5)
            .iter()
            .map(|&(f, _)| f)
            .collect::<Vec<_>>()
    );
}
