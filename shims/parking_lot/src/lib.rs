//! Offline stand-in for `parking_lot`: thin wrappers over `std::sync`
//! exposing the non-poisoning `lock()/read()/write()` API. A poisoned lock
//! (panic while held) is propagated as a panic, matching the way this
//! workspace uses parking_lot (no lock is ever expected to be poisoned).

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|e| panic!("poisoned mutex: {e}"))
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(|e| panic!("poisoned mutex: {e}"))
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|e| panic!("poisoned mutex: {e}"))
    }
}

#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|e| panic!("poisoned rwlock: {e}"))
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(|e| panic!("poisoned rwlock: {e}"))
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(|e| panic!("poisoned rwlock: {e}"))
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|e| panic!("poisoned rwlock: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }
}
