//! Offline stand-in for `criterion`.
//!
//! Implements just enough of the criterion API for the workspace's benches
//! to compile and produce useful numbers offline: per-benchmark median and
//! mean wall-clock over `sample_size` samples, printed as plain text. No
//! statistical analysis, plots, or baselines — this is a measurement shim,
//! not a statistics package.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation; recorded and echoed alongside timings.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Benchmark identifier: a function name plus a parameter rendered via
/// `Display`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Top-level harness state.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, None, self.sample_size, &mut routine);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.criterion.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(
            &label,
            self.throughput,
            self.criterion.sample_size,
            &mut routine,
        );
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(
            &label,
            self.throughput,
            self.criterion.sample_size,
            &mut |b| routine(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

/// Passed to benchmark closures; `iter` measures one sample.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Calibrate the iteration count so one sample takes ~10ms, then
        // measure. Good enough for relative comparisons offline.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(50));
        let iters =
            (Duration::from_millis(10).as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = iters;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    throughput: Option<Throughput>,
    sample_size: usize,
    routine: &mut F,
) {
    let mut per_iter: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut bencher = Bencher {
            elapsed: Duration::ZERO,
            iters: 1,
        };
        routine(&mut bencher);
        per_iter.push(bencher.elapsed.as_secs_f64() / bencher.iters as f64);
    }
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) if median > 0.0 => {
            format!("  {:>12.0} elem/s", n as f64 / median)
        }
        Some(Throughput::Bytes(n)) if median > 0.0 => {
            format!("  {:>12.0} B/s", n as f64 / median)
        }
        _ => String::new(),
    };
    println!(
        "{label:<50} median {:>12} mean {:>12}{rate}",
        format_time(median),
        format_time(mean)
    );
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Mirrors criterion's two `criterion_group!` forms (plain and
/// `name/config/targets`).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Elements(4));
        group.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
        c.bench_function("plain", |b| b.iter(|| 1 + 1));
    }
}
