//! Offline stand-in for `proptest`.
//!
//! Provides deterministic randomized property testing with the subset of the
//! proptest API this workspace uses: the [`Strategy`] trait with `prop_map` /
//! `prop_flat_map`, range and tuple strategies, [`collection::vec`],
//! [`any`], `Just`, and the `proptest!` / `prop_assert!` / `prop_assert_eq!`
//! macros. Differences from upstream:
//!
//! - **No shrinking.** A failing case reports its seed and case index; rerun
//!   with `PROPTEST_CASES`/the printed seed to reproduce.
//! - **Deterministic by default.** Case seeds derive from the test name, so
//!   failures reproduce across runs and machines.
//! - Cases per property default to 64; override with `PROPTEST_CASES`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::ops::{Range, RangeInclusive};

/// RNG handed to strategies during sampling.
pub type TestRng = StdRng;

/// Error produced by `prop_assert!`-style macros inside a property body.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// A source of random values of type `Self::Value`.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }

    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            base: self,
            f,
            reason,
        }
    }
}

/// `s.prop_map(f)`: sample from `s`, then apply `f`.
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.sample(rng))
    }
}

/// `s.prop_flat_map(f)`: sample from `s`, build a dependent strategy, sample
/// from that.
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.base.sample(rng)).sample(rng)
    }
}

/// `s.prop_filter(reason, f)`: rejection-sample until `f` accepts (bounded).
pub struct Filter<S, F> {
    base: S,
    f: F,
    reason: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.base.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 consecutive samples: {}",
            self.reason
        );
    }
}

/// Constant strategy.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! numeric_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

numeric_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! numeric_range_incl_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

numeric_range_incl_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Types with a canonical "arbitrary" strategy, used by [`any`].
pub trait Arbitrary: Sized {
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_via_random {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> Self {
                rng.random()
            }
        }
    )*};
}

arbitrary_via_random!(u8, u32, u64, bool, f32, f64);

impl Arbitrary for usize {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        rng.random::<u64>() as usize
    }
}

/// Strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

/// `any::<T>()`: the canonical full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Length specification accepted by [`vec`]: an exact count or a range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `vec(element, size)`: vectors of `element` samples.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod test_runner {
    pub use super::{TestCaseError, TestRng};
}

pub mod prelude {
    pub use super::{any, Arbitrary, Just, Strategy, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub mod prop {
        pub use crate::collection;
    }
}

/// FNV-1a over the test name: a stable per-test base seed.
pub fn seed_for(test_name: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Number of cases per property (`PROPTEST_CASES` env override).
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Drives one property: runs `body` for each case with a per-case
/// deterministic RNG, panicking with reproduction info on the first failure.
pub fn run_cases<F>(test_name: &str, mut body: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let base = seed_for(test_name);
    for case in 0..cases() {
        let mut rng =
            TestRng::seed_from_u64(base ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        if let Err(e) = body(&mut rng) {
            panic!("property '{test_name}' failed at case {case} (base seed {base:#x}): {e}");
        }
    }
}

/// The `proptest!` block macro: each `fn name(pat in strategy, ...) { .. }`
/// expands to a `#[test]` running [`run_cases`] over sampled inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases(concat!(module_path!(), "::", stringify!($name)), |__proptest_rng| {
                    $(let $pat = $crate::Strategy::sample(&($strat), __proptest_rng);)+
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                });
            }
        )+
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

#[cfg(test)]
mod tests {
    use super::collection::vec;
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3u32..10, y in -2.0f64..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn vec_lengths(v in vec(0u8..=255, 2..5), w in vec(any::<bool>(), 7usize)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert_eq!(w.len(), 7);
        }

        #[test]
        fn flat_map_dependent(pair in (1usize..5).prop_flat_map(|n| {
            vec(0usize..n, n..=n).prop_map(move |v| (n, v))
        })) {
            let (n, v) = pair;
            prop_assert_eq!(v.len(), n);
            prop_assert!(v.iter().all(|&x| x < n));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut first = Vec::new();
        for run in 0..2 {
            let mut collected = Vec::new();
            super::run_cases("stable_name", |rng| {
                collected.push(Strategy::sample(&(0u64..1000), rng));
                Ok(())
            });
            if run == 0 {
                first = collected;
            } else {
                assert_eq!(first, collected);
            }
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failure_reports_case() {
        super::run_cases("always_fails", |_rng| {
            prop_assert!(false);
            #[allow(unreachable_code)]
            Ok(())
        });
    }
}
