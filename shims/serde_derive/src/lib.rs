//! No-op `Serialize`/`Deserialize` derives for the offline serde shim.
//!
//! The shim's traits are blanket-implemented for every type, so the derive
//! has nothing to generate — it exists purely so `#[derive(Serialize,
//! Deserialize)]` attributes on workspace types keep compiling verbatim.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
