//! Offline stand-in for the `bytes` crate.
//!
//! [`Bytes`] shares an immutable buffer behind an `Arc` with a view window,
//! so `clone()` and [`Bytes::slice`] stay O(1) like upstream — wire frames
//! are cloned per simulated receiver, and copying them would distort the
//! "serialized bytes on the wire" accounting the simulator performs.

use std::ops::{Deref, Range};
use std::sync::Arc;

/// Cheaply cloneable immutable byte buffer (a view into shared storage).
#[derive(Debug, Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes::default()
    }

    pub fn from_owner(data: Vec<u8>) -> Self {
        let end = data.len();
        Bytes {
            data: Arc::new(data),
            start: 0,
            end,
        }
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from_owner(data.to_vec())
    }

    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::from_owner(data.to_vec())
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// O(1) sub-view; panics if the range is out of bounds.
    pub fn slice(&self, range: Range<usize>) -> Bytes {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice {range:?} out of bounds for Bytes of length {}",
            self.len()
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// Splits off the first `at` bytes as an O(1) view, advancing `self`
    /// past them; panics if `at` is out of bounds.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(
            at <= self.len(),
            "split_to({at}) out of bounds for Bytes of length {}",
            self.len()
        );
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes::from_owner(data)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

/// Growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Clone, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut::default()
    }

    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from_owner(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Little-endian read cursor over a byte source. Reads consume from the
/// front; all methods panic on underflow (the simulated network never
/// truncates frames, so underflow is a programming error).
pub trait Buf {
    fn remaining(&self) -> usize;
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.remaining(), "buffer underflow");
        dst.copy_from_slice(&self.data[self.start..self.start + dst.len()]);
        self.start += dst.len();
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "buffer underflow");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// Little-endian write sink.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(7);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(u64::MAX - 1);
        buf.put_f32_le(-1.5);
        buf.put_f64_le(0.1);
        buf.put_slice(b"xyz");
        let mut b = buf.freeze();
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(b.get_u64_le(), u64::MAX - 1);
        assert_eq!(b.get_f32_le(), -1.5);
        assert_eq!(b.get_f64_le(), 0.1);
        let mut tail = [0u8; 3];
        b.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn slice_is_a_view() {
        let b = Bytes::from_owner(vec![0, 1, 2, 3, 4, 5]);
        let s = b.slice(2..5);
        assert_eq!(&*s, &[2, 3, 4]);
        assert_eq!(s.slice(1..2).as_ref(), &[3]);
    }

    #[test]
    fn split_to_advances_past_the_head() {
        let mut b = Bytes::from_owner(vec![0, 1, 2, 3, 4, 5]);
        let head = b.split_to(2);
        assert_eq!(&*head, &[0, 1]);
        assert_eq!(&*b, &[2, 3, 4, 5]);
        assert_eq!(b.split_to(0).len(), 0);
        assert_eq!(&*b, &[2, 3, 4, 5]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn split_to_past_end_panics() {
        Bytes::from_owner(vec![1]).split_to(2);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut b = Bytes::from_owner(vec![1, 2]);
        b.get_u32_le();
    }
}
