//! Offline stand-in for the `rand` crate (0.9-style API).
//!
//! The build container has no network access to crates.io, so the workspace
//! vendors the tiny slice of `rand` it actually uses: a deterministic
//! [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64), the [`Rng`] /
//! [`SeedableRng`] traits, and [`seq::SliceRandom::shuffle`]. Determinism is
//! a feature here — the reproduction's tests require bit-identical models
//! from identical seeds, so this generator is stable across platforms and
//! releases by construction.

/// Values that can be produced uniformly by [`Rng::random`].
pub trait Random {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

impl Random for u64 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for u32 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Random for u8 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Random for bool {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Random for f64 {
    /// Uniform in [0, 1) with 53 bits of precision.
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    /// Uniform in [0, 1) with 24 bits of precision.
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges accepted by [`Rng::random_range`].
pub trait SampleRange {
    type Output;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Debiased multiply-shift (Lemire); span is far below 2^64 in
                // practice so a single widening multiply suffices.
                let z = (rng.next_u64() as u128 * span) >> 64;
                (self.start as i128 + z as i128) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in random_range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let z = (rng.next_u64() as u128 * span) >> 64;
                (start as i128 + z as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let u = <$t as Random>::random_from(rng);
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// The user-facing generator trait; blanket-implemented over [`RngCore`].
pub trait Rng: RngCore {
    fn random<T: Random>(&mut self) -> T {
        T::random_from(self)
    }

    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample_from(self)
    }

    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator seeded via SplitMix64.
    ///
    /// Unlike upstream `StdRng`, the algorithm is part of this shim's
    /// contract: streams never change between releases, which the
    /// determinism tests rely on.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl StdRng {
        /// Snapshot of the full generator state, for checkpointing.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from a [`StdRng::state`] snapshot; the
        /// restored generator continues the exact same stream.
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Fisher–Yates shuffle, matching `rand::seq::SliceRandom::shuffle`.
    pub trait SliceRandom {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn state_roundtrip_continues_stream() {
        let mut a = StdRng::seed_from_u64(42);
        for _ in 0..10 {
            a.random::<u64>();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.random();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let v = rng.random_range(0usize..5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all range values reachable");
        for _ in 0..200 {
            let v = rng.random_range(3u32..=4);
            assert!((3..=4).contains(&v));
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle of 50 elements left them sorted");
    }

    #[test]
    fn random_bool_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "p=0.25 got {hits}/10000");
    }
}
