//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on config and model types
//! but never drives an actual serde serializer (persistence goes through the
//! hand-rolled binary codec in `model_io` and the JSON report writer in
//! `dimboost-core::report`). This shim keeps those derives and trait bounds
//! compiling without the real crate: the traits are empty markers,
//! blanket-implemented for all types, and the derive macros expand to
//! nothing.

/// Marker trait; every type implements it.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait; every type implements it.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Owned variant mirroring `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}

pub use serde_derive::{Deserialize, Serialize};

pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

pub mod ser {
    pub use crate::Serialize;
}
