//! # DimBoost
//!
//! A from-scratch Rust reproduction of *DimBoost: Boosting Gradient Boosting
//! Decision Tree to Higher Dimensions* (SIGMOD 2018).
//!
//! This facade crate re-exports the workspace crates under one roof so that
//! examples and downstream users can depend on a single `dimboost` package:
//!
//! * [`data`] — datasets, synthetic generators, LibSVM IO, partitioning.
//! * [`sketch`] — Greenwald–Khanna mergeable quantile sketches.
//! * [`simnet`] — the simulated cluster: network cost model + collectives.
//! * [`ps`] — the parameter server (range-hash sharding, push/pull UDFs).
//! * [`core`] — the GBDT algorithm and the DimBoost distributed trainer.
//! * [`predict`] — compiled inference engine and serving benchmark.
//! * [`serving`] — open-loop traffic simulation: arrivals, SLO batching,
//!   load shedding, and hot-swap on the simnet clock.
//! * [`baselines`] — MLlib/XGBoost/LightGBM/TencentBoost-style trainers.
//! * [`linalg`] — sparse PCA (dimension-reduction experiment).
//!
//! ## Quickstart
//!
//! ```
//! use dimboost::data::synthetic::{generate, SparseGenConfig};
//! use dimboost::data::partition::train_test_split;
//! use dimboost::core::{train_single_machine, GbdtConfig};
//!
//! let dataset = generate(&SparseGenConfig::new(2_000, 500, 20, 42));
//! let (train, test) = train_test_split(&dataset, 0.1, 42).unwrap();
//! let mut config = GbdtConfig::default();
//! config.num_trees = 5;
//! config.max_depth = 4;
//! let model = train_single_machine(&train, &config).unwrap();
//! let error = dimboost::core::metrics::classification_error(
//!     &model.predict_dataset(&test), test.labels());
//! assert!(error < 0.5);
//! ```

pub use dimboost_baselines as baselines;
pub use dimboost_core as core;
pub use dimboost_data as data;
pub use dimboost_linalg as linalg;
pub use dimboost_predict as predict;
pub use dimboost_ps as ps;
pub use dimboost_serving as serving;
pub use dimboost_simnet as simnet;
pub use dimboost_sketch as sketch;
